//! The Theorem-10/11 translations between ELPS, Horn + `union`,
//! Horn + `scons`, and LDL grouping.
//!
//! The paper's equivalences are model-theoretic; to make the
//! translated programs *executable* bottom-up we add **active-domain
//! guards**: a fresh unary predicate (written `adom_k` below) holding
//! every ground term appearing in the program's facts (with set
//! elements included recursively, plus `∅`). Clause bases whose
//! variables the paper leaves open range over this guard. This is the
//! standard finite restriction of the paper's infinitary Herbrand
//! semantics (DESIGN.md §3); the equivalence harness in
//! [`crate::equiv`] compares models *relative to the common
//! predicates* exactly as §6 prescribes.
//!
//! Directions implemented:
//!
//! * [`elps_to_horn_union`] / [`elps_to_horn_scons`] — Theorem 10
//!   steps 3/4: each restricted universal quantifier is *peeled* into
//!   an accumulator predicate that grows a subset element by element
//!   (`S' = {x} ∪ S`), with base case `∅`.
//! * [`horn_union_to_elps`] / [`horn_scons_to_elps`] — Theorem 10
//!   steps 1/2: the builtin is replaced by a defined predicate whose
//!   single clause uses quantifiers and disjunction (then compiled by
//!   Theorem 6 downstream).
//! * [`union_via_grouping`] — Theorem 11: `union` as an LDL grouping
//!   program.
//! * [`grouping_to_elps`] — Theorem 11 (final step): LDL grouping
//!   clauses become ELPS clauses with stratified negation, via the
//!   proper-subset construction of §4.2.

use lps_syntax::{parse_program, pretty, Clause, Formula, HeadArg, Item, Literal, Program, Term};

use crate::error::CoreError;
use crate::fresh::FreshNames;
use crate::transform::positive::normalize_program;

/// Collect the active-domain fact block: one `adom(t).` per ground
/// term in the program's facts (set elements included, recursively),
/// plus the empty set.
fn adom_block(program: &Program, adom: &str, sets_only: bool) -> String {
    use std::collections::BTreeSet;
    let mut terms: BTreeSet<String> = BTreeSet::new();
    terms.insert("{}".to_owned());
    fn add_term(t: &Term, sets_only: bool, out: &mut BTreeSet<String>) {
        if !t.is_ground() {
            return;
        }
        if !sets_only || matches!(t, Term::SetLit(..)) {
            out.insert(pretty::pretty_term(t));
        }
        if let Term::SetLit(elems, _) = t {
            for e in elems {
                add_term(e, sets_only, out);
            }
        }
    }
    for clause in program.clauses() {
        if clause.body.is_none() {
            for arg in &clause.head.args {
                if let HeadArg::Term(t) = arg {
                    add_term(t, sets_only, &mut terms);
                }
            }
        }
    }
    let mut out = String::new();
    for t in terms {
        out.push_str(&format!("{adom}({t}).\n"));
    }
    out
}

/// Which set constructor the peeling translation uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Peel {
    /// `union({x}, S, S')` — Theorem 10 step 3.
    Union,
    /// `scons(x, S, S')` — Theorem 10 step 4.
    Scons,
}

/// Translate an ELPS program (positive bodies) into Horn clauses over
/// L + `union` (or + `scons`): no restricted universal quantifiers
/// remain.
pub fn elps_to_horn(program: &Program, peel: Peel) -> Result<Program, CoreError> {
    // Normalize first so every clause is outer-literals + at most one
    // ∀-chain over literals.
    let normalized = normalize_program(program)?;
    let mut fresh = FreshNames::for_program(&normalized);
    let adom = fresh.pred("adom");

    let mut out = String::new();
    out.push_str(&adom_block(&normalized, &adom, false));

    for item in &normalized.items {
        match item {
            Item::Decl(d) => out.push_str(&format!("{}\n", pretty::pretty_decl(d))),
            Item::Clause(c) => out.push_str(&peel_clause(c, peel, &adom, &mut fresh)?),
        }
    }

    parse_program(&out).map_err(|e| {
        CoreError::invalid(
            e.span,
            format!("internal: generated translation failed to parse: {e}\n{out}"),
        )
    })
}

/// Theorem 10 step 3: peel with `union`.
pub fn elps_to_horn_union(program: &Program) -> Result<Program, CoreError> {
    elps_to_horn(program, Peel::Union)
}

/// Theorem 10 step 4: peel with `scons`.
pub fn elps_to_horn_scons(program: &Program) -> Result<Program, CoreError> {
    elps_to_horn(program, Peel::Scons)
}

/// Split a normalized body into (outer conjuncts, ∀-chain).
fn split_body(body: &Formula) -> (Vec<&Formula>, Option<&Formula>) {
    let conjuncts: Vec<&Formula> = match body {
        Formula::And(fs) => fs.iter().collect(),
        other => vec![other],
    };
    let mut outer = Vec::new();
    let mut group = None;
    for c in conjuncts {
        if matches!(c, Formula::Forall { .. }) && group.is_none() {
            group = Some(c);
        } else {
            outer.push(c);
        }
    }
    (outer, group)
}

fn conj_to_src(fs: &[&Formula]) -> String {
    fs.iter()
        .map(|f| pretty::pretty_formula(f))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Peel one normalized clause.
fn peel_clause(
    c: &Clause,
    peel: Peel,
    adom: &str,
    fresh: &mut FreshNames,
) -> Result<String, CoreError> {
    let Some(body) = &c.body else {
        return Ok(format!("{}\n", pretty::pretty_clause(c)));
    };
    let (outer, group) = split_body(body);
    let Some(group) = group else {
        return Ok(format!("{}\n", pretty::pretty_clause(c)));
    };

    // Decompose the ∀-chain: binders + inner conjunction.
    let mut binders: Vec<(String, Term)> = Vec::new();
    let mut cur = group;
    while let Formula::Forall { var, set, body, .. } = cur {
        binders.push((var.clone(), set.clone()));
        cur = body;
    }
    let inner: Vec<&Formula> = match cur {
        Formula::And(fs) => fs.iter().collect(),
        other => vec![other],
    };

    let mut out = String::new();

    // Innermost predicate: q_{n+1}(w̄) :- guards, inner.
    // Guard every variable not bound by a positive (non-builtin)
    // literal of the inner conjunction — the paper leaves these open;
    // the active domain closes them.
    let inner_free: Vec<String> =
        Formula::and(inner.iter().map(|f| (*f).clone()).collect::<Vec<_>>()).free_vars();
    let mut bound_by_pos: Vec<String> = Vec::new();
    for f in &inner {
        if let Formula::Lit(Literal::Pred(name, args, _)) = f {
            if lps_engine::Builtin::from_pred_name(name, args.len()).is_none() {
                for a in args {
                    bound_by_pos.extend(a.vars());
                }
            }
        }
    }
    let mut q_pred = fresh.pred("qinner");
    let q_args = inner_free.clone();
    {
        let guards: Vec<String> = q_args
            .iter()
            .filter(|v| !bound_by_pos.contains(v))
            .map(|v| format!("{adom}({v})"))
            .collect();
        let mut body_parts = guards;
        body_parts.push(conj_to_src(&inner));
        out.push_str(&format!(
            "{}({}) :- {}.\n",
            q_pred,
            q_args.join(", "),
            body_parts.join(", ")
        ));
    }

    // Peel quantifiers inside-out. After processing binder i, `q_pred`
    // denotes φ_i = (∀x_i ∈ Y_i) … (inner), with args = free(φ_i).
    let mut q_free: Vec<String> = q_args;
    for (x, domain) in binders.iter().rev() {
        let acc = fresh.pred("acc");
        // ū = free(φ_{i+1}) ∖ {x}.
        let u: Vec<String> = q_free.iter().filter(|v| *v != x).cloned().collect();
        let acc_set = fresh.var("S");
        let acc_set2 = fresh.var("S");
        // Base: acc(ū, ∅) with adom guards on ū.
        let mut base_parts: Vec<String> = u.iter().map(|v| format!("{adom}({v})")).collect();
        base_parts.push(format!("{acc_set} = {{}}"));
        out.push_str(&format!(
            "{}({}) :- {}.\n",
            acc,
            args_with(&u, &acc_set),
            base_parts.join(", ")
        ));
        // Step: acc(ū, S') :- acc(ū, S), q(free φ_{i+1}), S' = {x} ∪ S.
        let constructor = match peel {
            Peel::Union => format!("union({{{x}}}, {acc_set}, {acc_set2})"),
            Peel::Scons => format!("scons({x}, {acc_set}, {acc_set2})"),
        };
        out.push_str(&format!(
            "{}({}) :- {}({}), {}({}), {}.\n",
            acc,
            args_with(&u, &acc_set2),
            acc,
            args_with(&u, &acc_set),
            q_pred,
            q_free.join(", "),
            constructor
        ));
        // New q: q'(free φ_i) :- acc(ū, Y_i).
        let domain_src = pretty::pretty_term(domain);
        let mut new_free: Vec<String> = u.clone();
        for v in domain.vars() {
            if !new_free.contains(&v) {
                new_free.push(v);
            }
        }
        let q_new = fresh.pred("qall");
        out.push_str(&format!(
            "{}({}) :- {}({}).\n",
            q_new,
            new_free.join(", "),
            acc,
            args_with(&u, &domain_src)
        ));
        q_pred = q_new;
        q_free = new_free;
    }

    // Final clause: A :- outer, q(free φ_1).
    let head_src = pretty::pretty_head(&c.head);
    let mut parts: Vec<String> = outer.iter().map(|f| pretty::pretty_formula(f)).collect();
    parts.push(format!("{}({})", q_pred, q_free.join(", ")));
    out.push_str(&format!("{head_src} :- {}.\n", parts.join(", ")));
    Ok(out)
}

fn args_with(vars: &[String], last: &str) -> String {
    if vars.is_empty() {
        last.to_owned()
    } else {
        format!("{}, {}", vars.join(", "), last)
    }
}

/// Theorem 10 step 1: replace `union/3` calls with a defined ELPS
/// predicate (quantifiers + disjunction; Theorem 6 compiles it later).
pub fn horn_union_to_elps(program: &Program) -> Result<Program, CoreError> {
    replace_builtin_calls(program, "union", 3, |p| {
        format!(
            "{p}(Ux, Uy, Uz) :- (forall Uw in Ux: Uw in Uz), \
                 (forall Uw2 in Uy: Uw2 in Uz), \
                 (forall Uw3 in Uz: (Uw3 in Ux ; Uw3 in Uy)).\n"
        )
    })
}

/// Theorem 10 step 2: replace `scons/3` calls with a defined ELPS
/// predicate.
pub fn horn_scons_to_elps(program: &Program) -> Result<Program, CoreError> {
    replace_builtin_calls(program, "scons", 3, |p| {
        format!(
            "{p}(Sx, Sy, Sz) :- Sx in Sz, (forall Sw in Sy: Sw in Sz), \
                 (forall Sw2 in Sz: (Sw2 in Sy ; Sw2 = Sx)).\n"
        )
    })
}

fn replace_builtin_calls(
    program: &Program,
    name: &str,
    arity: usize,
    def: impl Fn(&str) -> String,
) -> Result<Program, CoreError> {
    let mut fresh = FreshNames::for_program(program);
    let new_pred = fresh.pred(&format!("def_{name}"));
    let mut used = false;

    fn rewrite(f: &Formula, name: &str, arity: usize, new_pred: &str, used: &mut bool) -> Formula {
        match f {
            Formula::Lit(Literal::Pred(p, args, span)) if p == name && args.len() == arity => {
                *used = true;
                Formula::Lit(Literal::Pred(new_pred.to_owned(), args.clone(), *span))
            }
            Formula::Lit(_) => f.clone(),
            Formula::Not(inner, span) => {
                Formula::Not(Box::new(rewrite(inner, name, arity, new_pred, used)), *span)
            }
            Formula::And(fs) => Formula::And(
                fs.iter()
                    .map(|f| rewrite(f, name, arity, new_pred, used))
                    .collect(),
            ),
            Formula::Or(fs) => Formula::Or(
                fs.iter()
                    .map(|f| rewrite(f, name, arity, new_pred, used))
                    .collect(),
            ),
            Formula::Forall {
                var,
                set,
                body,
                span,
            } => Formula::Forall {
                var: var.clone(),
                set: set.clone(),
                body: Box::new(rewrite(body, name, arity, new_pred, used)),
                span: *span,
            },
            Formula::Exists {
                var,
                set,
                body,
                span,
            } => Formula::Exists {
                var: var.clone(),
                set: set.clone(),
                body: Box::new(rewrite(body, name, arity, new_pred, used)),
                span: *span,
            },
        }
    }

    let mut items = Vec::new();
    for item in &program.items {
        match item {
            Item::Decl(d) => items.push(Item::Decl(d.clone())),
            Item::Clause(c) => {
                let body = c
                    .body
                    .as_ref()
                    .map(|b| rewrite(b, name, arity, &new_pred, &mut used));
                items.push(Item::Clause(Clause {
                    head: c.head.clone(),
                    body,
                    span: c.span,
                }));
            }
        }
    }
    let mut out = Program { items };
    if used {
        let def_src = def(&new_pred);
        let def_prog = parse_program(&def_src).map_err(|e| {
            CoreError::invalid(e.span, format!("internal: generated definition: {e}"))
        })?;
        out.items.extend(def_prog.items);
    }
    Ok(out)
}

/// Theorem 11: define `union` through LDL grouping (the `q(x, y, ⟨z⟩)`
/// program of the proof), guarded by the active domain. Returns the
/// program text defining `target(X, Y, Z)` ⇔ `Z = X ∪ Y` for active
/// sets `X`, `Y` with `X ∪ Y ≠ ∅` (LDL grouping produces no empty
/// groups — see EXPERIMENTS.md E5 for the comparison protocol).
pub fn union_via_grouping(program: &Program, target: &str) -> Result<Program, CoreError> {
    let mut fresh = FreshNames::for_program(program);
    let adom = fresh.pred("adom");
    let p = fresh.pred("member_of_either");
    let mut out = String::new();
    // The paper defines union over sets; restrict the guard to the
    // set-valued part of the active domain.
    out.push_str(&adom_block(program, &adom, true));
    // `Gw in Gx` over the set-valued active domain.
    out.push_str(&format!(
        "{p}(Gx, Gy, Gw) :- {adom}(Gx), {adom}(Gy), Gw in Gx.\n"
    ));
    out.push_str(&format!(
        "{p}(Gx, Gy, Gw) :- {adom}(Gx), {adom}(Gy), Gw in Gy.\n"
    ));
    out.push_str(&format!("{target}(Gx, Gy, <Gw>) :- {p}(Gx, Gy, Gw).\n"));
    let mut parsed = parse_program(&out)
        .map_err(|e| CoreError::invalid(e.span, format!("internal: grouping def: {e}")))?;
    let mut items = program.items.clone();
    items.append(&mut parsed.items);
    Ok(Program { items })
}

/// Theorem 11 (final step): rewrite every LDL grouping clause
/// `A(x̄, ⟨x⟩) :- B` into ELPS clauses with stratified negation via
/// the proper-subset construction (§4.2 / proof of Theorem 11).
pub fn grouping_to_elps(program: &Program) -> Result<Program, CoreError> {
    let mut fresh = FreshNames::for_program(program);
    let mut out_items: Vec<Item> = Vec::new();
    let mut generated = String::new();

    for item in &program.items {
        let Item::Clause(c) = item else {
            out_items.push(item.clone());
            continue;
        };
        if !c.head.has_grouping() {
            out_items.push(item.clone());
            continue;
        }
        let body = c
            .body
            .as_ref()
            .ok_or_else(|| CoreError::invalid(c.head.span, "grouping clause without body"))?;

        // Split head args: x̄ (plain) and the grouping variable.
        let mut plain_vars: Vec<String> = Vec::new();
        let mut group_var = None;
        for arg in &c.head.args {
            match arg {
                HeadArg::Term(Term::Var(v, _)) => plain_vars.push(v.clone()),
                HeadArg::Term(t) => {
                    return Err(CoreError::invalid(
                        t.span(),
                        "grouping_to_elps requires variable head arguments",
                    ))
                }
                HeadArg::Group(v, _) => group_var = Some(v.clone()),
            }
        }
        let group_var = group_var.expect("has_grouping checked");

        // bodypred(x̄, x) :- B.
        let bodypred = fresh.pred("groupbody");
        let mut bp_args = plain_vars.clone();
        bp_args.push(group_var.clone());
        generated.push_str(&format!(
            "{bodypred}({}) :- {}.\n",
            bp_args.join(", "),
            pretty::pretty_formula(body)
        ));

        // Proper subset: psub(X, Y) ⇔ X ⊂ Y.
        let psub = fresh.pred("psub");
        let has_more = fresh.pred("strictly_bigger");
        generated.push_str(&format!(
            "{has_more}(Px, Py) :- subseteq(Px, Py), Pw in Py, Pw notin Px.\n\
             {psub}(Px, Py) :- {has_more}(Px, Py).\n"
        ));

        // p(x̄, Y): some proper superset of Y is fully covered.
        let covered_sup = fresh.pred("covered_superset");
        let setvar = fresh.var("Gy");
        let supvar = fresh.var("Gz");
        let elemvar = fresh.var("Gx");
        let xs = plain_vars.join(", ");
        let xs_comma = if xs.is_empty() {
            String::new()
        } else {
            format!("{xs}, ")
        };
        generated.push_str(&format!(
            "{covered_sup}({xs_comma}{setvar}) :- {psub}({setvar}, {supvar}), \
             forall {elemvar} in {supvar}: {bodypred}({xs_comma}{elemvar}).\n"
        ));

        // A(x̄, Y) :- (∀x∈Y) bodypred(x̄, x), not p(x̄, Y).
        let head_name = &c.head.pred;
        generated.push_str(&format!(
            "{head_name}({xs_comma}{setvar}) :- \
             (forall {elemvar} in {setvar}: {bodypred}({xs_comma}{elemvar})), \
             not {covered_sup}({xs_comma}{setvar}).\n"
        ));
    }

    let mut parsed = parse_program(&generated).map_err(|e| {
        CoreError::invalid(
            e.span,
            format!("internal: grouping_to_elps generated: {e}\n{generated}"),
        )
    })?;
    out_items.append(&mut parsed.items);
    Ok(Program { items: out_items })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_syntax::parse_program;

    fn has_forall(p: &Program) -> bool {
        fn f_has(f: &Formula) -> bool {
            match f {
                Formula::Forall { .. } => true,
                Formula::Exists { body, .. } => f_has(body),
                Formula::Not(inner, _) => f_has(inner),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().any(f_has),
                Formula::Lit(_) => false,
            }
        }
        p.clauses().any(|c| c.body.as_ref().is_some_and(f_has))
    }

    const DISJ: &str = "pair({a, b}, {c}). pair({a}, {a, b}).\n\
         disj(X, Y) :- pair(X, Y), forall U in X: forall V in Y: U != V.";

    #[test]
    fn peeling_removes_all_quantifiers() {
        let p = parse_program(DISJ).unwrap();
        for peel in [Peel::Union, Peel::Scons] {
            let horn = elps_to_horn(&p, peel).unwrap();
            assert!(!has_forall(&horn), "no quantifiers remain");
            // adom facts were generated (a, b, c, the sets, ∅).
            let printed = lps_syntax::pretty_program(&horn);
            assert!(printed.contains("adom_0({})"), "{printed}");
            assert!(printed.contains("adom_0(a)"), "{printed}");
            assert!(printed.contains("adom_0({a, b})"), "{printed}");
        }
    }

    #[test]
    fn peeling_keeps_quantifier_free_clauses_intact() {
        let p = parse_program("e(a, b). t(X, Y) :- e(X, Y).").unwrap();
        let horn = elps_to_horn_union(&p).unwrap();
        let printed = lps_syntax::pretty_program(&horn);
        assert!(printed.contains("t(X, Y) :- e(X, Y)."));
    }

    #[test]
    fn union_call_replacement_adds_definition() {
        let p = parse_program("r({a}, {b}). big(Z) :- r(X, Y), union(X, Y, Z).").unwrap();
        let elps = horn_union_to_elps(&p).unwrap();
        let printed = lps_syntax::pretty_program(&elps);
        assert!(
            !printed.contains("union("),
            "builtin call replaced: {printed}"
        );
        assert!(printed.contains("def_union"), "{printed}");
        assert!(has_forall(&elps), "definition uses quantifiers");
    }

    #[test]
    fn scons_call_replacement_adds_definition() {
        let p = parse_program("r({a}). s(Z) :- r(Y), scons(b, Y, Z).").unwrap();
        let elps = horn_scons_to_elps(&p).unwrap();
        let printed = lps_syntax::pretty_program(&elps);
        assert!(!printed.contains("scons("), "{printed}");
        assert!(printed.contains("def_scons"), "{printed}");
    }

    #[test]
    fn no_calls_no_definition() {
        let p = parse_program("p(a).").unwrap();
        let elps = horn_union_to_elps(&p).unwrap();
        assert_eq!(elps.items.len(), 1);
    }

    #[test]
    fn grouping_translation_produces_negation() {
        let p = parse_program("car(alice, c1). owns(P, <C>) :- car(P, C).").unwrap();
        let elps = grouping_to_elps(&p).unwrap();
        let printed = lps_syntax::pretty_program(&elps);
        assert!(
            !printed.contains('<'),
            "no grouping heads remain: {printed}"
        );
        assert!(
            printed.contains("not "),
            "uses stratified negation: {printed}"
        );
        assert!(printed.contains("groupbody"), "{printed}");
    }

    #[test]
    fn union_via_grouping_generates_program() {
        let p = parse_program("r({a}, {b}).").unwrap();
        let g = union_via_grouping(&p, "u").unwrap();
        let printed = lps_syntax::pretty_program(&g);
        assert!(printed.contains("u(Gx, Gy, <Gw>)"), "{printed}");
        assert!(printed.contains("adom_0({a})"), "{printed}");
    }

    #[test]
    fn generated_programs_reparse() {
        let p = parse_program(DISJ).unwrap();
        let horn = elps_to_horn_union(&p).unwrap();
        let printed = lps_syntax::pretty_program(&horn);
        let again = parse_program(&printed).unwrap();
        assert_eq!(lps_syntax::pretty_program(&again), printed);
    }
}
