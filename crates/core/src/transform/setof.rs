//! §4.2: set construction through stratified negation.
//!
//! Theorem 8 proves that no LPS program can define
//! `B(X) ⇔ X = {x │ A(x)}` — the rule `B(X) :- (∀x∈X) A(x)` also
//! admits every *subset*. The paper then shows (end of §4.2) that with
//! stratified negation the construction becomes expressible:
//!
//! ```text
//! C(X) :- X ⊂ Y ∧ (∀y∈Y) A(y)        % some strictly larger covered set
//! B(X) :- (∀x∈X) A(x) ∧ ¬C(X)        % maximal covered set
//! X ⊂ Y :- (∀x∈X)(x∈Y) ∧ z∈Y ∧ z∉X
//! ```
//!
//! [`setof_clauses`] emits exactly this program. Evaluating it needs
//! the candidate sets (including the maximal one) to exist in the
//! active universe — run with `SetUniverse::ActiveSubsets` (the
//! default in [`setof_database`]), which is the exponential cost that
//! experiment E5 contrasts with LDL grouping.

use lps_syntax::{parse_program, Program};

use crate::error::CoreError;
use crate::fresh::FreshNames;

/// Generate the §4.2 clauses defining `target(X)` ⇔ `X = {x │
/// source(x)}` for a unary predicate `source`. Returns the clause
/// block to append to a program.
pub fn setof_clauses(program: &Program, source: &str, target: &str) -> Result<Program, CoreError> {
    let mut fresh = FreshNames::for_program(program);
    let psub = fresh.pred("proper_subset");
    let covered = fresh.pred("covered");
    let bigger = fresh.pred("bigger_covered");
    let src = format!(
        "{psub}(Px, Py) :- subseteq(Px, Py), Pw in Py, Pw notin Px.\n\
         {covered}(Cy) :- forall Cu in Cy: {source}(Cu).\n\
         {bigger}(Bx) :- {psub}(Bx, Bz), {covered}(Bz).\n\
         {target}(Tx) :- {covered}(Tx), not {bigger}(Tx).\n"
    );
    parse_program(&src)
        .map_err(|e| CoreError::invalid(e.span, format!("internal: setof clauses: {e}")))
}

/// Convenience: a [`crate::Database`] with `facts` loaded, the §4.2
/// construction appended, and the powerset universe enabled.
pub fn setof_database(
    facts: &str,
    source: &str,
    target: &str,
    max_card: usize,
) -> Result<crate::Database, CoreError> {
    use lps_engine::{EvalConfig, SetUniverse};
    let mut db = crate::Database::with_config(
        crate::Dialect::StratifiedElps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card },
            ..EvalConfig::default()
        },
    );
    db.load_str(facts)?;
    let block = setof_clauses(db.program(), source, target)?;
    db.load_program(block);
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_term::Value;

    #[test]
    fn constructs_exactly_the_full_set() {
        // {x | a(x)} = {c1, c2}.
        let db = setof_database("a(c1). a(c2). other(c3).", "a", "the_set", 3).unwrap();
        let mut m = db.evaluate().unwrap();
        let rows = m.extension("the_set");
        assert_eq!(
            rows,
            vec![vec![Value::set([Value::atom("c1"), Value::atom("c2")])]],
            "exactly one set: the full extension"
        );
        // Strict subsets are NOT in the answer (Theorem 8's failing
        // candidate B(X) :- ∀x∈X a(x) would include them).
        assert!(!m.holds("the_set", &[Value::set([Value::atom("c1")])]));
        assert!(!m.holds("the_set", &[Value::empty_set()]));
    }

    #[test]
    fn empty_extension_yields_empty_set() {
        let db = setof_database("other(c1).", "a", "the_set", 2).unwrap();
        let mut m = db.evaluate().unwrap();
        assert!(m.holds("the_set", &[Value::empty_set()]));
        assert_eq!(m.count("the_set", 1), 1);
    }

    #[test]
    fn paper_counterexample_p1_vs_p2() {
        // Theorem 8's proof: P1 = {A(c1)}, P2 = {A(c1), A(c2)}.
        // The construction answers {c1} under P1 and {c1, c2} under P2
        // — and in particular M_{P2} ⊉ M_{P1} on B, which is exactly
        // why no *monotone* (negation-free) program can do this.
        let db1 = setof_database("a(c1). dom(c2).", "a", "b", 2).unwrap();
        let mut m1 = db1.evaluate().unwrap();
        let c1set = Value::set([Value::atom("c1")]);
        assert!(m1.holds("b", std::slice::from_ref(&c1set)));
        assert_eq!(m1.count("b", 1), 1);

        let db2 = setof_database("a(c1). a(c2).", "a", "b", 2).unwrap();
        let mut m2 = db2.evaluate().unwrap();
        assert!(!m2.holds("b", &[c1set]), "P2 must NOT keep B({{c1}})");
        assert!(m2.holds("b", &[Value::set([Value::atom("c1"), Value::atom("c2")])]));
        assert_eq!(m2.count("b", 1), 1);
    }
}
