//! Program transformations from the paper (and the engineering
//! extensions built in their style).
//!
//! * [`positive`] — Theorem 6: positive-formula bodies → pure LPS.
//! * [`translations`] — Theorems 10/11: ELPS ⇄ Horn+`union` ⇄
//!   Horn+`scons` ⇄ LDL grouping.
//! * [`setof`] — §4.2: set construction via stratified negation.
//! * [`magic`] — demand-driven query answering: conjunctive goals
//!   compiled into temporary query rules over the engine's magic-set
//!   rewrite.

pub mod magic;
pub mod positive;
pub mod setof;
pub mod translations;
