//! Program transformations from the paper.
//!
//! * [`positive`] — Theorem 6: positive-formula bodies → pure LPS.
//! * [`translations`] — Theorems 10/11: ELPS ⇄ Horn+`union` ⇄
//!   Horn+`scons` ⇄ LDL grouping.
//! * [`setof`] — §4.2: set construction via stratified negation.

pub mod positive;
pub mod setof;
pub mod translations;
