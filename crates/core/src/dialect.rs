//! Language dialects: which fragment of the paper a program lives in.

/// The language fragments defined by the paper, in increasing
/// generality.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Dialect {
    /// *Pure LPS* (Definition 5): clause bodies are a restricted-
    /// universal-quantifier prefix over a conjunction of atomic
    /// formulas; one level of set nesting; no disjunction, no
    /// existentials, no negation, no grouping.
    PureLps,
    /// *LPS with positive bodies* (§4.1, Theorem 6): bodies are
    /// arbitrary positive formulas — compiled down to pure LPS with
    /// auxiliary predicates. Still one level of set nesting.
    Lps,
    /// *ELPS* (§5): arbitrarily nested finite sets, positive bodies.
    #[default]
    Elps,
    /// ELPS plus stratified negation and LDL grouping heads (§4.2, §6).
    StratifiedElps,
}

impl Dialect {
    /// Whether set values may nest (depth > 1) and functions may take
    /// set arguments.
    pub fn allows_nesting(self) -> bool {
        matches!(self, Dialect::Elps | Dialect::StratifiedElps)
    }

    /// Whether `not` and grouping heads are allowed.
    pub fn allows_negation(self) -> bool {
        matches!(self, Dialect::StratifiedElps)
    }

    /// Whether disjunction/existentials are allowed in bodies (to be
    /// compiled away per Theorem 6).
    pub fn allows_positive_bodies(self) -> bool {
        !matches!(self, Dialect::PureLps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix() {
        assert!(!Dialect::PureLps.allows_nesting());
        assert!(!Dialect::PureLps.allows_positive_bodies());
        assert!(!Dialect::Lps.allows_nesting());
        assert!(Dialect::Lps.allows_positive_bodies());
        assert!(Dialect::Elps.allows_nesting());
        assert!(!Dialect::Elps.allows_negation());
        assert!(Dialect::StratifiedElps.allows_negation());
    }
}
