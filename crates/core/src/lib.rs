//! # `lps-core` — the LPS/ELPS language of Kuper (PODS 1987)
//!
//! This crate is the paper's contribution made executable:
//!
//! * the **two-sorted logic** of §2.1 ([`sorts`]) and the clause
//!   well-formedness rules of Definition 5 ([`validate`]), organized
//!   into the paper's [`Dialect`]s (pure LPS → LPS → ELPS →
//!   stratified ELPS);
//! * the **Theorem-6 compiler** ([`transform::positive`]) taking
//!   arbitrary positive-formula bodies to pure LPS, in both the
//!   paper's literal construction and an optimized normalizer;
//! * the **Theorem-10/11 translations** ([`transform::translations`])
//!   between ELPS, Horn+`union`, Horn+`scons`, and LDL grouping, with
//!   the [`equiv`] harness that checks them the way §6 defines
//!   equivalence (agreement on common predicates);
//! * the **§4.2 set construction** via stratified negation
//!   ([`transform::setof`]) — the counterpoint to Theorem 8's
//!   impossibility result;
//! * a high-level [`Database`] API: load programs in the surface
//!   syntax, evaluate to the least (stratified-perfect) model, query
//!   with owned [`Value`]s.
//!
//! ```
//! use lps_core::{Database, Dialect, Value};
//!
//! let mut db = Database::new(Dialect::Lps);
//! db.load_str(
//!     "pair({a, b}, {c}). pair({a}, {a, b}).
//!      disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.",
//! ).unwrap();
//! let mut model = db.evaluate().unwrap();
//! let ab = Value::set([Value::atom("a"), Value::atom("b")]);
//! let c = Value::set([Value::atom("c")]);
//! assert!(model.holds("disj", &[ab, c]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod database;
pub mod dialect;
pub mod equiv;
pub mod error;
pub mod fresh;
pub mod lower;
pub mod serve;
pub mod sorts;
pub mod transform;
pub mod validate;

pub use database::{Database, Model};
pub use dialect::Dialect;
pub use error::CoreError;
pub use lps_engine::QueryPath;
pub use lps_term::Value;
pub use serve::{Client, Server};
pub use transform::magic::{QueryAnswers, QueryAnswersRef};
