//! Concurrent query serving over a length-prefixed wire protocol.
//!
//! A [`Server`] is the single-writer / many-reader split of the
//! engine's snapshot layer ([`lps_engine::snapshot`]) put on the
//! network: one **writer thread** owns the live [`Model`] and its
//! [`SnapshotPublisher`]; one blocking **handler thread per
//! connection** answers queries lock-free from the latest published
//! [`EngineSnapshot`](lps_engine::EngineSnapshot) whenever it can, and
//! funnels everything else (cold adornments, new seed constants,
//! conjunctive goals, fact additions) to the writer over an mpsc
//! channel. After every write or funneled query the writer republishes,
//! so later readers hit.
//!
//! # Wire format
//!
//! Both directions are framed as a big-endian `u32` byte length
//! followed by that many bytes of UTF-8. Requests are one frame:
//!
//! ```text
//! Q <goal>     answer a query goal, e.g. `Q path(a, X).`
//!              (the goal ends with `.`, conjunctions allowed)
//! F <fact>     add ground fact clause(s), e.g. `F edge(a, b).`
//! S            server metrics: Prometheus-style text exposition
//!              (snapshot hits/misses, funnel depth, republish count,
//!              per-op latency quantiles), answered connection-side
//! ```
//!
//! The response is one frame: a first line `ok <n>` or `err <message>`,
//! followed by `n` answer lines. For a single-predicate *point* query
//! (arguments are distinct variables or ground terms) each line is a
//! full tuple in the predicate's argument order, rendered as values
//! joined by `", "`; for a conjunctive goal each line is the binding of
//! the goal's free variables in first-appearance order. Lines are
//! sorted, so byte-equality of responses is answer-set equality. A
//! fully ground point query echoes the matching tuple (`ok 1`) or
//! answers `ok 0`; a fully ground *conjunctive* goal answers `ok 1`
//! with one empty line ("yes") or `ok 0` ("no").
//!
//! # Consistency
//!
//! A snapshot-served answer is exactly what the sequential engine
//! would answer at that epoch; a funneled answer is computed by the
//! writer on the live engine. Readers never see a torn epoch: the
//! snapshot `Arc` pins store, registry, relations, and plans together
//! (property-tested in `crates/engine/tests/prop_serve.rs`).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lps_engine::{SnapshotPublisher, SnapshotReader};
use lps_syntax::{parse_program, Clause, Formula, HeadArg, Item, Literal, Term};
use lps_term::{TermId, TermStore, Value};

use crate::database::{Database, Model};
use crate::error::CoreError;

/// Frames larger than this are rejected (a corrupt length prefix would
/// otherwise ask for gigabytes).
const MAX_FRAME: u32 = 1 << 24;

/// Write one length-prefixed UTF-8 frame.
pub fn write_frame(stream: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()
}

/// One inbound frame, classified so the server can answer malformed
/// input with an `err` frame instead of silently hanging up.
enum FrameIn {
    /// A well-formed frame.
    Msg(String),
    /// Clean EOF at a frame boundary.
    Eof,
    /// The length prefix exceeded [`MAX_FRAME`]. The payload was *not*
    /// read, so the stream cannot be re-synced to the next frame.
    TooLarge(u32),
    /// The payload was read but is not valid UTF-8; the stream is
    /// still framed and the connection can continue.
    BadUtf8,
}

fn read_frame_raw(stream: &mut impl Read) -> io::Result<FrameIn> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(FrameIn::Eof),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Ok(FrameIn::TooLarge(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    match String::from_utf8(buf) {
        Ok(s) => Ok(FrameIn::Msg(s)),
        Err(_) => Ok(FrameIn::BadUtf8),
    }
}

/// Read one length-prefixed UTF-8 frame; `None` on clean EOF at a
/// frame boundary.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<String>> {
    match read_frame_raw(stream)? {
        FrameIn::Msg(s) => Ok(Some(s)),
        FrameIn::Eof => Ok(None),
        FrameIn::TooLarge(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        )),
        FrameIn::BadUtf8 => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame is not valid UTF-8",
        )),
    }
}

/// A response: sorted answer lines, or a rendered error.
type Reply = Result<Vec<String>, String>;

/// A handler → writer funnel message.
enum Request {
    /// Answer a goal on the live engine (snapshot could not).
    Query(String, Sender<Reply>),
    /// Apply ground fact clauses.
    Fact(String, Sender<Reply>),
}

/// Server-side metrics, aggregated across all connections and rendered
/// on demand by the `S` wire op. The snapshot hit/miss counters and the
/// funnel depth gauge stay lock-free atomics (they sit on the request
/// hot path); latencies and the republish count go through the
/// [`lps_trace::Registry`], whose mutex is uncontended at wire
/// timescales.
#[derive(Debug, Default)]
struct ServeMetrics {
    registry: lps_trace::Registry,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Requests funneled to the writer but not yet picked up by it.
    depth: AtomicU64,
}

impl ServeMetrics {
    /// The full Prometheus-style text exposition.
    fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in [
            ("lps_snapshot_hits_total", self.hits.load(Ordering::Relaxed)),
            (
                "lps_snapshot_misses_total",
                self.misses.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        let depth = self.depth.load(Ordering::Relaxed);
        out.push_str(&format!(
            "# TYPE lps_funnel_depth gauge\nlps_funnel_depth {depth}\n"
        ));
        out.push_str(&self.registry.render());
        out
    }
}

/// Encode a [`Reply`] as the response frame payload.
fn encode_reply(reply: &Reply) -> String {
    match reply {
        Ok(rows) => {
            let mut out = format!("ok {}", rows.len());
            for row in rows {
                out.push('\n');
                out.push_str(row);
            }
            out
        }
        Err(msg) => format!("err {}", msg.replace('\n', " ")),
    }
}

/// Decode a response frame payload back into a [`Reply`].
fn decode_reply(payload: &str) -> Reply {
    let mut lines = payload.lines();
    let head = lines.next().unwrap_or("");
    if let Some(msg) = head.strip_prefix("err ") {
        return Err(msg.to_owned());
    }
    let n: usize = head
        .strip_prefix("ok ")
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    // `lines()` drops a trailing empty line, so a ground-goal "yes"
    // row (`ok 1` + one empty line) is reconstructed from the count.
    let mut rows: Vec<String> = lines.map(str::to_owned).collect();
    rows.resize(n, String::new());
    Ok(rows)
}

/// Render one value row the way both serving paths agree on.
fn render_row(row: &[Value]) -> String {
    let cells: Vec<String> = row.iter().map(Value::to_string).collect();
    cells.join(", ")
}

/// The point-query argument vector of a literal whose arguments are
/// all distinct variables or ground terms — `None` when any argument
/// carries structure needing a real join (repeated variables,
/// arithmetic), in which case the goal takes the conjunctive pipeline.
fn point_query_args(args: &[Term]) -> Option<Vec<Option<Value>>> {
    let mut seen: Vec<&str> = Vec::new();
    let mut out = Vec::with_capacity(args.len());
    for arg in args {
        match arg {
            Term::Var(v, _) => {
                if seen.contains(&v.as_str()) {
                    return None;
                }
                seen.push(v);
                out.push(None);
            }
            other => out.push(Some(term_to_value(other)?)),
        }
    }
    Some(out)
}

/// Convert a ground surface term to a [`Value`] (`None` for variables
/// and arithmetic).
fn term_to_value(t: &Term) -> Option<Value> {
    match t {
        Term::Var(..) => None,
        Term::Const(c, _) => Some(Value::atom(c.clone())),
        Term::Int(i, _) => Some(Value::int(*i)),
        Term::App(f, args, _) => {
            let vals: Option<Vec<_>> = args.iter().map(term_to_value).collect();
            Some(Value::app(f.clone(), vals?))
        }
        Term::SetLit(elems, _) => {
            let vals: Option<Vec<_>> = elems.iter().map(term_to_value).collect();
            Some(Value::set(vals?))
        }
        Term::BinOp(..) => None,
    }
}

/// Parse `goal` (ending with `.`) and classify it as a point query:
/// `Some((pred, args))` when it is a single positive literal with
/// distinct-variable/ground arguments.
fn parse_point_goal(goal: &str) -> Option<(String, Vec<Option<Value>>)> {
    let wrapped = format!("query_goal :- {goal}");
    let parsed = parse_program(&wrapped).ok()?;
    let clause = parsed.clauses().next()?;
    let body = clause.body.as_ref()?;
    match body {
        Formula::Lit(Literal::Pred(name, args, _)) => {
            point_query_args(args).map(|pa| (name.clone(), pa))
        }
        _ => None,
    }
}

/// Resolve an already-interned [`Value`] in a read-only store. `None`
/// for `App` terms (no read-only finder — funnel) and for constants
/// the store has never interned.
fn find_value(store: &TermStore, v: &Value) -> Option<TermId> {
    match v {
        Value::Atom(a) => store.find_atom(a),
        Value::Int(i) => store.find_int(*i),
        Value::Set(elems) => {
            let ids: Option<Vec<TermId>> = elems.iter().map(|e| find_value(store, e)).collect();
            store.find_set(ids?)
        }
        Value::App(..) => None,
    }
}

/// Try to answer `goal` from the latest published snapshot alone.
/// `None` funnels to the writer: non-point goals, predicates or
/// constants the snapshot has never seen, cold adornments, unseeded
/// constants, stale demand spaces.
fn snapshot_answer(goal: &str, reader: &SnapshotReader) -> Option<Vec<String>> {
    let (name, args) = parse_point_goal(goal)?;
    let snap = reader.current();
    let pred = snap.find_pred(&name, args.len())?;
    let mut interned: Vec<Option<TermId>> = Vec::with_capacity(args.len());
    for a in &args {
        match a {
            None => interned.push(None),
            Some(v) => interned.push(Some(find_value(snap.store(), v)?)),
        }
    }
    let rows = snap.try_query(pred, &interned)?;
    let mut vals: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|&id| Value::from_store(snap.store(), id))
                .collect()
        })
        .collect();
    vals.sort();
    Some(vals.iter().map(|r| render_row(r)).collect())
}

/// Answer `goal` on the live engine (the writer thread), mirroring the
/// `lpsi` query pipeline: point queries take [`Model::query`] (full
/// tuples in predicate shape), everything else compiles as a temporary
/// conjunctive rule via [`Model::query_str`] (binding rows).
fn writer_query(model: &mut Model, goal: &str) -> Reply {
    let wrapped = format!("query_goal :- {goal}");
    let parsed = parse_program(&wrapped).map_err(|e| e.render(&wrapped))?;
    let clause = parsed.clauses().next().ok_or("empty query")?;
    let body = clause.body.as_ref().ok_or("empty query")?;
    let point = match body {
        Formula::Lit(Literal::Pred(name, args, _)) => {
            point_query_args(args).map(|pa| (name.clone(), pa))
        }
        _ => None,
    };
    let answers = match &point {
        Some((name, args)) => model.query(name, args),
        None => model.query_str(goal),
    }
    .map_err(|e| e.to_string())?;
    Ok(answers.rows.iter().map(|r| render_row(r)).collect())
}

/// Apply `text` as ground fact clauses on the live engine. Rules and
/// declarations are rejected — the served program is fixed at spawn.
fn writer_fact(model: &mut Model, text: &str) -> Reply {
    let parsed = parse_program(text).map_err(|e| e.render(text))?;
    let mut facts = Vec::new();
    for item in &parsed.items {
        let Item::Clause(Clause {
            head, body: None, ..
        }) = item
        else {
            return Err("only ground facts can be added over the wire".into());
        };
        let mut args = Vec::with_capacity(head.args.len());
        for arg in &head.args {
            let HeadArg::Term(t) = arg else {
                return Err("only ground facts can be added over the wire".into());
            };
            args.push(term_to_value(t).ok_or("facts must be ground")?);
        }
        facts.push((head.pred.clone(), args));
    }
    for (pred, args) in &facts {
        model.add_fact(pred, args).map_err(|e| e.to_string())?;
    }
    Ok(Vec::new())
}

/// The writer loop: the one thread that mutates the engine. Every
/// handled request ends with a republish, so snapshot readers converge
/// on the writer's answers.
fn writer_loop(
    mut model: Model,
    mut publisher: SnapshotPublisher,
    rx: Receiver<Request>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let req = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(req) => req,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        metrics.depth.fetch_sub(1, Ordering::Relaxed);
        let _span = lps_trace::enabled().then(|| {
            lps_trace::span("serve_writer").arg(
                "op",
                match &req {
                    Request::Query(..) => "query",
                    Request::Fact(..) => "fact",
                },
            )
        });
        let (reply_to, reply) = match req {
            Request::Query(goal, tx) => (tx, writer_query(&mut model, &goal)),
            Request::Fact(text, tx) => (tx, writer_fact(&mut model, &text)),
        };
        publisher.publish(model.engine_mut());
        metrics.registry.inc("lps_republish_total");
        let _ = reply_to.send(reply);
    }
}

/// One connection's handler loop: read a frame, serve or funnel,
/// respond, until the peer hangs up.
fn handle_conn(
    mut stream: TcpStream,
    reader: SnapshotReader,
    tx: Sender<Request>,
    metrics: Arc<ServeMetrics>,
) {
    let funnel = |req: Request, rx: &Receiver<Reply>, tx: &Sender<Request>| -> Reply {
        metrics.depth.fetch_add(1, Ordering::Relaxed);
        if tx.send(req).is_err() {
            // Never enqueued: the writer is gone, so nothing will
            // decrement the depth for this request.
            metrics.depth.fetch_sub(1, Ordering::Relaxed);
            return Err("server is shutting down".into());
        }
        match rx.recv() {
            Ok(reply) => reply,
            Err(_) => Err("server is shutting down".into()),
        }
    };
    loop {
        let msg = match read_frame_raw(&mut stream) {
            Ok(FrameIn::Msg(msg)) => msg,
            Ok(FrameIn::Eof) | Err(_) => return,
            Ok(FrameIn::TooLarge(len)) => {
                // The oversized payload was never read, so the stream
                // cannot be re-synced to the next frame boundary. Tell
                // the peer why before hanging up instead of vanishing.
                let _ = write_frame(
                    &mut stream,
                    &format!("err frame too large ({len} bytes > {MAX_FRAME} max)"),
                );
                return;
            }
            Ok(FrameIn::BadUtf8) => {
                // The payload was consumed, so the connection is still
                // framed — report the error and keep serving.
                if write_frame(&mut stream, "err frame is not valid UTF-8").is_err() {
                    return;
                }
                continue;
            }
        };
        let (tag, rest) = msg.split_once(' ').unwrap_or((msg.as_str(), ""));
        let _span = lps_trace::enabled().then(|| lps_trace::span("serve_req").arg("op", tag));
        let start = Instant::now();
        let reply: Reply = match tag {
            "Q" => match snapshot_answer(rest, &reader) {
                Some(rows) => {
                    metrics.hits.fetch_add(1, Ordering::Relaxed);
                    Ok(rows)
                }
                None => {
                    metrics.misses.fetch_add(1, Ordering::Relaxed);
                    let (rtx, rrx) = mpsc::channel();
                    funnel(Request::Query(rest.to_owned(), rtx), &rrx, &tx)
                }
            },
            "F" => {
                let (rtx, rrx) = mpsc::channel();
                funnel(Request::Fact(rest.to_owned(), rtx), &rrx, &tx)
            }
            "S" => Ok(metrics.render().lines().map(str::to_owned).collect()),
            other => Err(format!(
                "unknown request `{other}` (Q <goal> | F <fact> | S)"
            )),
        };
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        match tag {
            "Q" => metrics.registry.observe("lps_op_q_us", us),
            "F" => metrics.registry.observe("lps_op_f_us", us),
            "S" => metrics.registry.observe("lps_op_s_us", us),
            _ => {}
        }
        if write_frame(&mut stream, &encode_reply(&reply)).is_err() {
            return;
        }
    }
}

/// A running query server: the writer thread, the accept loop, and
/// per-connection handler threads. Shuts down on drop.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
    metrics: Arc<ServeMetrics>,
}

impl Server {
    /// Compile `db` into a live demand-driven session and serve it on
    /// `listener`. The session starts un-materialized: queries are
    /// answered goal-directed, and each funneled query extends the
    /// published snapshot's retained demand plans.
    pub fn spawn(listener: TcpListener, db: &Database) -> Result<Server, CoreError> {
        let mut model = db.session()?;
        let publisher = SnapshotPublisher::new(model.engine_mut());
        let reader = publisher.reader();
        let addr = listener
            .local_addr()
            .expect("a bound listener has a local address");
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServeMetrics::default());
        let (tx, rx) = mpsc::channel();
        let writer = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || writer_loop(model, publisher, rx, shutdown, metrics))
        };
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Responses are two small writes (length prefix +
                    // payload); without TCP_NODELAY each one stalls on
                    // the peer's delayed ACK (~40ms per round-trip).
                    stream.set_nodelay(true).ok();
                    let reader = reader.clone();
                    let tx = tx.clone();
                    let metrics = Arc::clone(&metrics);
                    std::thread::spawn(move || handle_conn(stream, reader, tx, metrics));
                }
            })
        };
        Ok(Server {
            addr,
            shutdown,
            accept: Some(accept),
            writer: Some(writer),
            metrics,
        })
    }

    /// The address the server is listening on (resolved, so a `:0`
    /// bind reports the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries answered lock-free from a published snapshot.
    pub fn snapshot_hits(&self) -> u64 {
        self.metrics.hits.load(Ordering::Relaxed)
    }

    /// Queries funneled to the writer.
    pub fn snapshot_misses(&self) -> u64 {
        self.metrics.misses.load(Ordering::Relaxed)
    }

    /// The current metrics exposition — the same text the `S` wire op
    /// returns, for in-process embedders.
    pub fn metrics_text(&self) -> String {
        self.metrics.render()
    }

    /// Signal shutdown and join the accept and writer threads.
    /// Idempotent; `Drop` calls it, and in-process embedders (tests,
    /// the e2e smoke) call it directly for a deterministic stop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }

    /// Block the calling thread while the server runs (until another
    /// thread drops or signals it — used by `lpsi --serve`).
    pub fn serve_forever(self) -> ! {
        loop {
            std::thread::park();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A blocking wire-protocol client (used by `lpsi --client`, the e2e
/// smoke test, and the E17 throughput experiment).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a [`Server`].
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, request: &str) -> io::Result<Reply> {
        write_frame(&mut self.stream, request)?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(decode_reply(&payload)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }

    /// Answer a query goal (ending with `.`). `Ok(Ok(rows))` are the
    /// sorted answer lines; `Ok(Err(msg))` is a server-side error.
    pub fn query(&mut self, goal: &str) -> io::Result<Result<Vec<String>, String>> {
        self.roundtrip(&format!("Q {goal}"))
    }

    /// Add ground fact clause(s).
    pub fn add_fact(&mut self, text: &str) -> io::Result<Result<(), String>> {
        Ok(self.roundtrip(&format!("F {text}"))?.map(|_| ()))
    }

    /// Fetch the server's metrics exposition (the `S` op):
    /// Prometheus-style text with counters, gauges, and per-op latency
    /// summaries.
    pub fn server_stats(&mut self) -> io::Result<Result<String, String>> {
        Ok(self.roundtrip("S")?.map(|rows| rows.join("\n")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;

    fn chain_db() -> Database {
        let mut db = Database::new(Dialect::Elps);
        db.load_str(
            "e(a, b). e(b, c). e(c, d).
             t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        )
        .unwrap();
        db
    }

    fn local_server(db: &Database) -> Server {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        Server::spawn(listener, db).unwrap()
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "Q t(a, X).").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), "Q t(a, X).");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn reply_codec_preserves_ground_yes() {
        let yes: Reply = Ok(vec![String::new()]);
        assert_eq!(decode_reply(&encode_reply(&yes)), yes);
        let rows: Reply = Ok(vec!["a, b".into(), "a, c".into()]);
        assert_eq!(decode_reply(&encode_reply(&rows)), rows);
        let err: Reply = Err("bad goal".into());
        assert_eq!(decode_reply(&encode_reply(&err)), err);
    }

    #[test]
    fn serves_point_queries_and_repeats_hit_the_snapshot() {
        let db = chain_db();
        let server = local_server(&db);
        let mut client = Client::connect(server.local_addr()).unwrap();
        // Cold: the first query funnels (no plan published yet).
        let rows = client.query("t(a, X).").unwrap().unwrap();
        assert_eq!(rows, vec!["a, b", "a, c", "a, d"]);
        assert_eq!(server.snapshot_hits(), 0);
        // Warm: the republished epoch serves the repeat lock-free.
        let rows = client.query("t(a, X).").unwrap().unwrap();
        assert_eq!(rows, vec!["a, b", "a, c", "a, d"]);
        assert_eq!(server.snapshot_hits(), 1);
        // A constant the recursive rewrite already seeded (the magic
        // fixpoint for `a` demands everything `a` reaches) is served
        // from the snapshot on first sight.
        let rows = client.query("t(b, X).").unwrap().unwrap();
        assert_eq!(rows, vec!["b, c", "b, d"]);
        assert_eq!(server.snapshot_hits(), 2);
        // A cold adornment funnels, then its repeat hits.
        let rows = client.query("t(X, d).").unwrap().unwrap();
        assert_eq!(rows, vec!["a, d", "b, d", "c, d"]);
        assert_eq!(server.snapshot_hits(), 2);
        let _ = client.query("t(X, d).").unwrap().unwrap();
        assert_eq!(server.snapshot_hits(), 3);
    }

    #[test]
    fn facts_invalidate_and_queries_reconverge() {
        let db = chain_db();
        let server = local_server(&db);
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.query("t(c, X).").unwrap().unwrap(), vec!["c, d"]);
        client.add_fact("e(d, e).").unwrap().unwrap();
        // The new edge must show up — via funnel or a republished hit.
        let rows = client.query("t(c, X).").unwrap().unwrap();
        assert_eq!(rows, vec!["c, d", "c, e"]);
        // A ground point query echoes the tuple (yes) or answers none.
        assert_eq!(
            client.query("t(a, e).").unwrap().unwrap(),
            vec!["a, e"],
            "ground point query: the matching tuple"
        );
        assert!(client.query("t(e, a).").unwrap().unwrap().is_empty());
        // A ground conjunctive goal answers with one empty row (yes).
        assert_eq!(
            client.query("t(a, e), t(c, e).").unwrap().unwrap(),
            vec![String::new()],
            "ground conjunctive goal: yes"
        );
    }

    #[test]
    fn conjunctive_goals_and_errors_funnel() {
        let db = chain_db();
        let server = local_server(&db);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let rows = client.query("t(a, X), e(X, Y).").unwrap().unwrap();
        assert_eq!(rows, vec!["b, c", "c, d"]);
        assert!(client.query("t(a, X").unwrap().is_err(), "syntax error");
        assert!(
            client.add_fact("p(X) :- q(X).").unwrap().is_err(),
            "rules are rejected over the wire"
        );
    }

    #[test]
    fn server_stats_exposes_counters_and_latency_quantiles() {
        let db = chain_db();
        let mut server = local_server(&db);
        let mut client = Client::connect(server.local_addr()).unwrap();
        // One miss (cold plan), then one hit.
        client.query("t(a, X).").unwrap().unwrap();
        client.query("t(a, X).").unwrap().unwrap();
        let text = client.server_stats().unwrap().unwrap();
        assert!(text.contains("lps_snapshot_hits_total 1"), "{text}");
        assert!(text.contains("lps_snapshot_misses_total 1"), "{text}");
        assert!(text.contains("lps_funnel_depth 0"), "{text}");
        assert!(text.contains("lps_republish_total 1"), "{text}");
        assert!(
            text.contains("lps_op_q_us{quantile=\"0.5\"}")
                && text.contains("lps_op_q_us{quantile=\"0.99\"}")
                && text.contains("lps_op_q_us_count 2"),
            "{text}"
        );
        // Counters move again after more traffic, and the exposition
        // matches what the in-process accessor renders.
        client.query("t(a, X).").unwrap().unwrap();
        let text = client.server_stats().unwrap().unwrap();
        assert!(text.contains("lps_snapshot_hits_total 2"), "{text}");
        assert!(text.contains("lps_op_s_us_count 1"), "{text}");
        assert!(server.metrics_text().contains("lps_snapshot_hits_total 2"));
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn bad_utf8_frame_gets_err_reply_and_connection_survives() {
        let db = chain_db();
        let server = local_server(&db);
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).ok();
        let payload = [0xffu8, 0xfe, 0xfd];
        stream
            .write_all(&u32::try_from(payload.len()).unwrap().to_be_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        let reply = read_frame(&mut stream).unwrap().unwrap();
        assert!(reply.starts_with("err "), "{reply}");
        assert!(reply.contains("UTF-8"), "{reply}");
        // The stream is still framed: a well-formed request works.
        write_frame(&mut stream, "Q e(a, X).").unwrap();
        let reply = read_frame(&mut stream).unwrap().unwrap();
        assert!(reply.starts_with("ok 1"), "{reply}");
    }

    #[test]
    fn oversized_frame_gets_err_reply_then_close() {
        let db = chain_db();
        let server = local_server(&db);
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).ok();
        // A length prefix past MAX_FRAME with no payload behind it: the
        // server cannot re-sync, so it must explain and hang up rather
        // than silently disconnect.
        stream.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
        let reply = read_frame(&mut stream).unwrap().unwrap();
        assert!(reply.starts_with("err frame too large"), "{reply}");
        assert!(read_frame(&mut stream).unwrap().is_none(), "closed after");
    }

    #[test]
    fn concurrent_clients_agree_with_sequential_answers() {
        let db = chain_db();
        let server = local_server(&db);
        let addr = server.local_addr();
        let want = vec!["a, b".to_string(), "a, c".into(), "a, d".into()];
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let want = want.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for _ in 0..20 {
                        assert_eq!(client.query("t(a, X).").unwrap().unwrap(), want);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(
            server.snapshot_hits() > 0,
            "concurrent repeats must hit the snapshot path"
        );
    }
}
