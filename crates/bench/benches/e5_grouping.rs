use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_bench::{db, workloads};
use lps_core::transform::setof::setof_database;
use lps_core::Dialect;
use lps_engine::SetUniverse;

/// E5: set construction — LDL grouping (linear) vs the §4.2
/// stratified-negation construction over the powerset (exponential).
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_grouping");
    for &n in &[3usize, 5, 7] {
        let grouping_src = workloads::setof_grouping(n);
        group.bench_with_input(BenchmarkId::new("grouping", n), &grouping_src, |b, src| {
            b.iter(|| {
                let d = db(src, Dialect::StratifiedElps, SetUniverse::Reject);
                std::hint::black_box(lps_bench::eval(&d).count("collected", 2))
            })
        });
        let facts = workloads::setof_facts(n);
        group.bench_with_input(BenchmarkId::new("negation_4_2", n), &facts, |b, src| {
            b.iter(|| {
                let d = setof_database(src, "a", "the_set", n).unwrap();
                std::hint::black_box(lps_bench::eval(&d).count("the_set", 1))
            })
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
