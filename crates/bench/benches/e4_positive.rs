use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_bench::{db, workloads};
use lps_core::transform::positive::{compilation_size, compile_positive_paper, normalize_program};
use lps_core::Dialect;
use lps_engine::SetUniverse;
use lps_syntax::{parse_program, pretty_program};

/// E4: Theorem-6 compilation — the paper's construction vs the
/// optimized normalizer, compile time and evaluated cost, at growing
/// quantifier depth.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_positive");
    for &d in &[2usize, 3, 4] {
        let src = workloads::positive_depth(d);
        let parsed = parse_program(&src).unwrap();
        group.bench_with_input(BenchmarkId::new("compile_paper", d), &parsed, |b, p| {
            b.iter(|| {
                let out = compile_positive_paper(p).unwrap();
                std::hint::black_box(compilation_size(p, &out))
            })
        });
        group.bench_with_input(BenchmarkId::new("compile_opt", d), &parsed, |b, p| {
            b.iter(|| {
                let out = normalize_program(p).unwrap();
                std::hint::black_box(compilation_size(p, &out))
            })
        });
        // Evaluated cost of each compiled form.
        let paper_src = pretty_program(&compile_positive_paper(&parsed).unwrap());
        group.bench_with_input(BenchmarkId::new("eval_paper", d), &paper_src, |b, p| {
            b.iter(|| {
                let d = db(p, Dialect::Elps, SetUniverse::ActiveSets);
                std::hint::black_box(lps_bench::eval(&d).stats().facts_derived)
            })
        });
        group.bench_with_input(BenchmarkId::new("eval_opt", d), &src, |b, p| {
            b.iter(|| {
                let d = db(p, Dialect::Elps, SetUniverse::ActiveSets);
                std::hint::black_box(lps_bench::eval(&d).stats().facts_derived)
            })
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
