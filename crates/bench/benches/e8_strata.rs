use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_bench::{db, workloads};
use lps_core::Dialect;
use lps_engine::SetUniverse;

/// E8: stratified evaluation — chains of k negation strata.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_strata");
    for &k in &[2usize, 8, 24] {
        let src = workloads::strata_chain(k, 64);
        group.bench_with_input(BenchmarkId::new("chain", k), &src, |b, src| {
            b.iter(|| {
                let d = db(src, Dialect::StratifiedElps, SetUniverse::Reject);
                std::hint::black_box(lps_bench::eval(&d).stats().strata)
            })
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
