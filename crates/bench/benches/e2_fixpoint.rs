use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_bench::{db_cfg, workloads};
use lps_core::Dialect;
use lps_engine::{EvalConfig, FixpointStrategy};

/// E2: naive vs semi-naive fixpoint on transitive closure (Theorem 5's
/// operator, literal vs optimized).
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_fixpoint");
    for &n in &[16usize, 48, 96] {
        let src = workloads::transitive_closure(n, 7);
        for (label, strategy) in [
            ("naive", FixpointStrategy::Naive),
            ("seminaive", FixpointStrategy::SemiNaive),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &src, |b, src| {
                b.iter(|| {
                    let d = db_cfg(
                        src,
                        Dialect::Elps,
                        EvalConfig {
                            strategy,
                            ..EvalConfig::default()
                        },
                    );
                    std::hint::black_box(lps_bench::eval(&d).count("t", 2))
                })
            });
        }
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
