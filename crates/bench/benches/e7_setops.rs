use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_term::{setops, TermStore, Value};

/// E7: set-algebra microbenches on canonical interned sets, plus the
/// interning ablation (TermId equality vs structural Value equality).
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_setops");
    for &n in &[16usize, 256, 4096] {
        let mut store = TermStore::new();
        let elems: Vec<_> = (0..n as i64).map(|i| store.int(i)).collect();
        let evens: Vec<_> = elems.iter().copied().step_by(2).collect();
        let set_all = store.set(elems.clone());
        let set_even = store.set(evens);
        let needle = store.int(n as i64 / 2);

        group.bench_with_input(BenchmarkId::new("member", n), &(), |b, _| {
            b.iter(|| std::hint::black_box(setops::member(&store, needle, set_all)))
        });
        group.bench_with_input(BenchmarkId::new("subset", n), &(), |b, _| {
            b.iter(|| std::hint::black_box(setops::subset(&store, set_even, set_all)))
        });
        group.bench_with_input(BenchmarkId::new("union", n), &(), |b, _| {
            let mut st = store.clone();
            b.iter(|| std::hint::black_box(setops::union(&mut st, set_even, set_all)))
        });
        // Equality: interned (O(1)) vs structural (O(n)). Re-interning
        // the same elements yields the same id — that id comparison is
        // the measured operation.
        let mut st2 = store.clone();
        let set_all_again = st2.set(elems.clone());
        let v1 = Value::from_store(&store, set_all);
        let v2 = Value::from_store(&store, set_all);
        group.bench_with_input(BenchmarkId::new("eq_interned", n), &(), |b, _| {
            b.iter(|| std::hint::black_box(set_all == set_all_again))
        });
        group.bench_with_input(BenchmarkId::new("eq_structural", n), &(), |b, _| {
            b.iter(|| std::hint::black_box(v1 == v2))
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
