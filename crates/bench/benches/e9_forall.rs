use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_bench::{db_cfg, workloads};
use lps_core::Dialect;
use lps_engine::EvalConfig;

/// E9: the element→set inverted-index trigger for semi-naive
/// re-evaluation of (∀x∈X) rules, on vs off. The workload chains the
/// quantified predicate off a recursive one so the trigger fires.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_forall");
    for &sets in &[200usize, 800, 2000] {
        let src = workloads::forall_trigger(sets, 64, 3, 5);
        for trigger in [true, false] {
            let label = if trigger { "indexed" } else { "recompute" };
            group.bench_with_input(BenchmarkId::new(label, sets), &src, |b, src| {
                b.iter(|| {
                    let d = db_cfg(
                        src,
                        Dialect::Elps,
                        EvalConfig {
                            forall_trigger_index: trigger,
                            ..EvalConfig::default()
                        },
                    );
                    std::hint::black_box(lps_bench::eval(&d).count("all_grown", 1))
                })
            });
        }
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
