use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_bench::{db, workloads};
use lps_core::Dialect;
use lps_engine::SetUniverse;

/// E10: non-1NF flattening throughput (Example 4) across relation
/// sizes and set arities.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_unnest");
    for &(rows, arity) in &[(500usize, 4usize), (500, 32), (4000, 4)] {
        let src = workloads::unnest(rows, arity);
        let label = format!("{rows}x{arity}");
        group.bench_function(BenchmarkId::new("unnest", label), |b| {
            b.iter(|| {
                let d = db(&src, Dialect::Elps, SetUniverse::Reject);
                std::hint::black_box(lps_bench::eval(&d).count("s", 2))
            })
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
