use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_bench::{db, workloads};
use lps_core::transform::translations::{elps_to_horn_scons, elps_to_horn_union};
use lps_core::Dialect;
use lps_engine::SetUniverse;
use lps_syntax::{parse_program, pretty_program};

/// E3: Theorem 10 head-to-head — the same `disj` program evaluated
/// directly as ELPS vs translated to Horn+union / Horn+scons (whose
/// accumulator predicates enumerate subsets).
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_equivalence");
    for &m in &[2usize, 3, 4] {
        // The translated programs' accumulator predicates enumerate
        // subsets — exponential in m, so the sweep stays small (the
        // report binary pushes the direct side much further).
        let src = workloads::disj_pairs(m, 4, 11);
        let parsed = parse_program(&src).unwrap();
        let horn_union = pretty_program(&elps_to_horn_union(&parsed).unwrap());
        let horn_scons = pretty_program(&elps_to_horn_scons(&parsed).unwrap());
        for (label, program) in [
            ("direct", src.clone()),
            ("horn_union", horn_union),
            ("horn_scons", horn_scons),
        ] {
            group.bench_with_input(BenchmarkId::new(label, m), &program, |b, p| {
                b.iter(|| {
                    let d = db(p, Dialect::Elps, SetUniverse::Reject);
                    std::hint::black_box(lps_bench::eval(&d).count("disj", 2))
                })
            });
        }
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
