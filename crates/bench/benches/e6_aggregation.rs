use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_bench::workloads::SumStyle;
use lps_bench::{db, workloads};
use lps_core::Dialect;
use lps_engine::SetUniverse;

/// E6: cost roll-up formulations — Example 5's disjoint-union
/// recursion vs scons peeling vs canonical scons_min chains.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_aggregation");
    for &k in &[3usize, 5, 7] {
        for (label, style) in [
            ("disj_union", SumStyle::DisjUnion),
            ("scons", SumStyle::Scons),
            ("scons_min", SumStyle::SconsMin),
        ] {
            // disj_union is Θ(3^k) (every subset splits every way):
            // k=7 is already ~500 ms; larger points live in the report
            // binary only.
            let src = workloads::bom(k, style);
            group.bench_with_input(BenchmarkId::new(label, k), &src, |b, src| {
                b.iter(|| {
                    let d = db(src, Dialect::Elps, SetUniverse::Reject);
                    std::hint::black_box(lps_bench::eval(&d).count("obj_cost", 2))
                })
            });
        }
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
