use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

use lps_bench::{db, eval};
use lps_core::Dialect;
use lps_engine::SetUniverse;

/// E1: each paper example as a micro-benchmark (parse + evaluate).
fn bench(c: &mut Criterion) {
    let examples: &[(&str, &str)] = &[
        (
            "ex1_disj",
            "pair({a, b}, {c}). pair({a, b}, {b, c}). pair({}, {a}).
             disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.",
        ),
        (
            "ex2_subset",
            "pair({a}, {a, b}). pair({a, b}, {a}). pair({}, {z}).
             subset(X, Y) :- pair(X, Y), forall U in X: U in Y.",
        ),
        (
            "ex3_union",
            "cand({a}, {b}, {a, b}). cand({a}, {b}, {a, b, c}). cand({}, {}, {}).
             u(X, Y, Z) :- cand(X, Y, Z), (forall U in X: U in Z),
                 (forall V in Y: V in Z), (forall W in Z: (W in X ; W in Y)).",
        ),
        (
            "ex4_unnest",
            "r(x1, {p, q}). r(x2, {q}). r(x3, {}).
             s(X, Y) :- r(X, Ys), Y in Ys.",
        ),
        (
            "ex5_sum",
            "input({3, 5, 9}).
             visit(Z) :- input(Z).
             visit(X) :- visit(Z), disj_union(X, _Y, Z).
             sum(S, 0) :- visit(S), S = {}.
             sum(S, N) :- visit(S), S = {N}.
             sum(Z, K) :- visit(Z), disj_union(X, Y, Z), X != {}, Y != {},
                          sum(X, M), sum(Y, N), M + N = K.",
        ),
        (
            "ex6_parts",
            "parts(widget, {bolt, nut, gear}). cost(bolt, 2). cost(nut, 1). cost(gear, 7).
             visit(Y) :- parts(_X, Y).
             visit(X) :- visit(Z), disj_union(X, _Y, Z).
             sum_costs(S, 0) :- visit(S), S = {}.
             sum_costs(S, N) :- visit(S), S = {P}, cost(P, N).
             sum_costs(Z, K) :- visit(Z), disj_union(X, Y, Z), X != {}, Y != {},
                                sum_costs(X, M), sum_costs(Y, N), M + N = K.
             obj_cost(X, N) :- parts(X, Y), sum_costs(Y, N).",
        ),
    ];
    let mut group = c.benchmark_group("e1_examples");
    for (name, src) in examples {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let d = db(src, Dialect::Elps, SetUniverse::Reject);
                std::hint::black_box(eval(&d).stats().facts_derived)
            })
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = configured(); targets = bench }
criterion_main!(benches);
