//! Workload generators and measurement helpers for the experiment
//! suite (EXPERIMENTS.md). Each `e*` Criterion bench and the `report`
//! binary build on these.

#![forbid(unsafe_code)]

pub mod workloads;

use std::time::{Duration, Instant};

use lps_core::{Database, Dialect, Model};
use lps_engine::{EvalConfig, SetUniverse};

/// Build a database from source with a dialect and universe policy.
pub fn db(src: &str, dialect: Dialect, universe: SetUniverse) -> Database {
    let mut db = Database::with_config(
        dialect,
        EvalConfig {
            set_universe: universe,
            ..EvalConfig::default()
        },
    );
    db.load_str(src).expect("workload parses");
    db
}

/// Build a database with full evaluation-config control.
pub fn db_cfg(src: &str, dialect: Dialect, config: EvalConfig) -> Database {
    let mut db = Database::with_config(dialect, config);
    db.load_str(src).expect("workload parses");
    db
}

/// Evaluate and return the model, panicking on error (workloads are
/// known-good).
pub fn eval(db: &Database) -> Model {
    db.evaluate().expect("workload evaluates")
}

/// Wall-clock one evaluation.
pub fn time_eval(db: &Database) -> (Duration, Model) {
    let start = Instant::now();
    let model = eval(db);
    (start.elapsed(), model)
}

/// Median-of-`n` wall time for `f` (report binary; Criterion handles
/// its own statistics).
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Render a plain-text table: header plus rows.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!("\n== {title} ==\n");
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Format a duration in microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sources_evaluate() {
        let src = workloads::transitive_closure(8, 42);
        let d = db(&src, Dialect::Elps, SetUniverse::Reject);
        let m = eval(&d);
        assert!(m.count("t", 2) > 0);
    }

    #[test]
    fn table_renders_aligned() {
        let t = table(
            "demo",
            &["n", "time"],
            &[
                vec!["1".into(), "2.0".into()],
                vec!["10".into(), "3.5".into()],
            ],
        );
        assert!(t.contains("demo"));
        assert!(t.contains("time"));
    }
}
