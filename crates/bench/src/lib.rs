//! Workload generators and measurement helpers for the experiment
//! suite (EXPERIMENTS.md). Each `e*` Criterion bench and the `report`
//! binary build on these.

#![forbid(unsafe_code)]

pub mod workloads;

use std::time::{Duration, Instant};

use lps_core::{Database, Dialect, Model};
use lps_engine::{EvalConfig, SetUniverse};

/// Build a database from source with a dialect and universe policy.
pub fn db(src: &str, dialect: Dialect, universe: SetUniverse) -> Database {
    let mut db = Database::with_config(
        dialect,
        EvalConfig {
            set_universe: universe,
            ..EvalConfig::default()
        },
    );
    db.load_str(src).expect("workload parses");
    db
}

/// Build a database with full evaluation-config control.
pub fn db_cfg(src: &str, dialect: Dialect, config: EvalConfig) -> Database {
    let mut db = Database::with_config(dialect, config);
    db.load_str(src).expect("workload parses");
    db
}

/// Evaluate and return the model, panicking on error (workloads are
/// known-good).
pub fn eval(db: &Database) -> Model {
    db.evaluate().expect("workload evaluates")
}

/// Wall-clock one evaluation.
pub fn time_eval(db: &Database) -> (Duration, Model) {
    let start = Instant::now();
    let model = eval(db);
    (start.elapsed(), model)
}

/// Median-of-`n` wall time for `f` (report binary; Criterion handles
/// its own statistics).
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// One rendered experiment section, retained for the JSON report.
struct Section {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Collects experiment output for the `report` binary: prints each
/// section as a plain-text table and optionally accumulates a JSON
/// document (`BENCH_report.json`), so the perf trajectory can be
/// compared across commits instead of eyeballing console tables.
pub struct Report {
    /// Smoke mode: experiments pick reduced parameter sweeps so the
    /// whole suite finishes in seconds (used by the CI bench smoke).
    pub smoke: bool,
    collect_json: bool,
    /// The experiment ids requested on the command line (empty = the
    /// full suite) — recorded in the JSON so a partial run is never
    /// mistaken for a complete baseline.
    experiments: Vec<String>,
    sections: Vec<Section>,
}

impl Report {
    /// New collector. `collect_json` retains sections for
    /// [`Report::to_json`]; `smoke` requests reduced parameters.
    pub fn new(collect_json: bool, smoke: bool) -> Self {
        Report {
            smoke,
            collect_json,
            experiments: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Record which experiment ids this run was restricted to (empty =
    /// all). Emitted as the JSON `experiments` field.
    pub fn set_experiments(&mut self, ids: &[String]) {
        self.experiments = ids.to_vec();
    }

    /// Print one experiment table and (in JSON mode) retain it.
    pub fn section(&mut self, id: &str, title: &str, header: &[&str], rows: &[Vec<String>]) {
        print!("{}", table(title, header, rows));
        if self.collect_json {
            self.sections.push(Section {
                id: id.to_owned(),
                title: title.to_owned(),
                columns: header.iter().map(|s| (*s).to_owned()).collect(),
                rows: rows.to_vec(),
            });
        }
    }

    /// The collected sections as a JSON document. Cells stay strings —
    /// consumers parse the `*_us` / `*_ns` columns they care about.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"smoke\": ");
        out.push_str(if self.smoke { "true" } else { "false" });
        out.push_str(",\n  \"experiments\": ");
        if self.experiments.is_empty() {
            out.push_str("\"all\"");
        } else {
            push_json_str_array(&mut out, &self.experiments);
        }
        out.push_str(",\n  \"sections\": [");
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"id\": ");
            push_json_str(&mut out, &s.id);
            out.push_str(", \"title\": ");
            push_json_str(&mut out, &s.title);
            out.push_str(", \"columns\": ");
            push_json_str_array(&mut out, &s.columns);
            out.push_str(", \"rows\": [");
            for (j, row) in s.rows.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_json_str_array(&mut out, row);
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write [`Report::to_json`] to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_str_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_str(out, item);
    }
    out.push(']');
}

/// Render a plain-text table: header plus rows.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!("\n== {title} ==\n");
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Format a duration in microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sources_evaluate() {
        let src = workloads::transitive_closure(8, 42);
        let d = db(&src, Dialect::Elps, SetUniverse::Reject);
        let m = eval(&d);
        assert!(m.count("t", 2) > 0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut rep = Report::new(true, true);
        rep.section(
            "e0",
            "demo \"quoted\" — title",
            &["n", "time_us"],
            &[vec!["1".into(), "2.0".into()]],
        );
        let json = rep.to_json();
        assert!(json.contains("\"id\": \"e0\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"experiments\": \"all\""));
        assert!(json.contains("[\"1\", \"2.0\"]"));
        // A restricted run records its scope.
        rep.set_experiments(&["e2".into(), "e7".into()]);
        assert!(rep.to_json().contains("\"experiments\": [\"e2\", \"e7\"]"));
    }

    #[test]
    fn table_renders_aligned() {
        let t = table(
            "demo",
            &["n", "time"],
            &[
                vec!["1".into(), "2.0".into()],
                vec!["10".into(), "3.5".into()],
            ],
        );
        assert!(t.contains("demo"));
        assert!(t.contains("time"));
    }
}
