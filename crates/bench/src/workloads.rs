//! Program generators for every experiment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// E2: random sparse digraph + transitive closure (the classic
/// fixpoint workload; `T_P` round count ≈ graph diameter).
pub fn transitive_closure(nodes: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    // A ring (guarantees a long derivation chain) plus random chords.
    for i in 0..nodes {
        let _ = writeln!(src, "e(n{i}, n{}).", (i + 1) % nodes);
    }
    for _ in 0..nodes / 2 {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        let _ = writeln!(src, "e(n{a}, n{b}).");
    }
    src.push_str("t(X, Y) :- e(X, Y).\nt(X, Z) :- e(X, Y), t(Y, Z).\n");
    src
}

/// E3/E9: `disj` over pairs of random subsets of an `m`-atom universe
/// (Example 1). `pairs` controls the EDB size.
pub fn disj_pairs(m: usize, pairs: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    for _ in 0..pairs {
        let left = random_subset(m, &mut rng);
        let right = random_subset(m, &mut rng);
        let _ = writeln!(src, "pair({left}, {right}).");
    }
    src.push_str("disj(X, Y) :- pair(X, Y), forall U in X: forall V in Y: U != V.\n");
    src
}

fn random_subset(m: usize, rng: &mut SmallRng) -> String {
    let elems: Vec<String> = (0..m)
        .filter(|_| rng.gen_bool(0.5))
        .map(|i| format!("a{i}"))
        .collect();
    format!("{{{}}}", elems.join(", "))
}

/// E4: a positive-formula body of quantifier depth `d`: nested
/// `∀ Sᵢ` alternating with disjunctions — stress for the Theorem-6
/// compilers. The driver relation supplies `d` set arguments.
pub fn positive_depth(d: usize) -> String {
    // cand(S1, ..., Sd). query(S1..Sd) :- cand(...), ∀U1∈S1 (U1 in S2 ∨ (∀U2∈S2 (...))).
    let vars: Vec<String> = (1..=d).map(|i| format!("S{i}")).collect();
    // Innermost: U_d in S_1 (some membership check).
    let mut body = format!("U{d} in S1");
    for i in (1..d).rev() {
        body = format!(
            "forall U{next} in S{next_s}: (U{next} in S{i} ; {body})",
            next = i + 1,
            next_s = i + 1,
        );
    }
    let full = format!("forall U1 in S1: ({body})");
    let mut src = String::new();
    // EDB: d sets over 4 atoms.
    let sets: Vec<&str> = vec!["{a, b}", "{b, c}", "{a, c}", "{a, b, c}", "{c, d}", "{d}"];
    let args: Vec<&str> = sets.iter().take(d).copied().collect();
    let _ = writeln!(src, "cand({}).", args.join(", "));
    let _ = writeln!(
        src,
        "query({vars}) :- cand({vars}), {full}.",
        vars = vars.join(", ")
    );
    src
}

/// E5: facts for set construction over an `n`-atom source extension.
pub fn setof_facts(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(src, "a(c{i}).");
    }
    src
}

/// E5 (grouping side): collect the same extension with an LDL
/// grouping head.
pub fn setof_grouping(n: usize) -> String {
    let mut src = setof_facts(n);
    src.push_str("tag(all).\ncollected(T, <X>) :- tag(T), a(X).\n");
    src
}

/// E6: a bill-of-materials with one object whose part set has `k`
/// primitives, rolled up with the given formulation.
pub enum SumStyle {
    /// Example 5's recursion over all disjoint partitions (2^k).
    DisjUnion,
    /// Peel any element with `scons` (still exponential subsets, but
    /// linear per-set decompositions).
    Scons,
    /// Canonical minimum-element peeling (linear chain).
    SconsMin,
}

pub fn bom(k: usize, style: SumStyle) -> String {
    let parts: Vec<String> = (0..k).map(|i| format!("p{i}")).collect();
    let mut src = String::new();
    let _ = writeln!(src, "parts(widget, {{{}}}).", parts.join(", "));
    for (i, p) in parts.iter().enumerate() {
        let _ = writeln!(src, "cost({p}, {}).", (i % 7) + 1);
    }
    match style {
        SumStyle::DisjUnion => src.push_str(
            "visit(Y) :- parts(_X, Y).
             visit(X) :- visit(Z), disj_union(X, _Y, Z).
             sum(S, 0) :- visit(S), S = {}.
             sum(S, N) :- visit(S), S = {P}, cost(P, N).
             sum(Z, K) :- visit(Z), disj_union(X, Y, Z), X != {}, Y != {},
                          sum(X, M), sum(Y, N), M + N = K.
             obj_cost(O, N) :- parts(O, Y), sum(Y, N).\n",
        ),
        SumStyle::Scons => src.push_str(
            "visit(Y) :- parts(_X, Y).
             visit(Rest) :- visit(S), scons(_P, Rest, S), card(S, N1), card(Rest, N2), N2 < N1.
             sum(S, 0) :- visit(S), S = {}.
             sum(S, K) :- visit(S), scons(P, Rest, S), P notin Rest,
                          cost(P, N), sum(Rest, M), N + M = K.
             obj_cost(O, N) :- parts(O, Y), sum(Y, N).\n",
        ),
        SumStyle::SconsMin => src.push_str(
            "visit(Y) :- parts(_X, Y).
             visit(Rest) :- visit(S), scons_min(_P, Rest, S).
             sum(S, 0) :- visit(S), S = {}.
             sum(S, K) :- visit(S), scons_min(P, Rest, S),
                          cost(P, N), sum(Rest, M), N + M = K.
             obj_cost(O, N) :- parts(O, Y), sum(Y, N).\n",
        ),
    }
    src
}

/// E8: a chain of `k` negation strata.
pub fn strata_chain(k: usize, facts: usize) -> String {
    let mut src = String::new();
    for i in 0..facts {
        let _ = writeln!(src, "p0(v{i}).");
    }
    for s in 1..=k {
        let prev = s - 1;
        // Each level keeps the values the previous level did NOT
        // exclude; `keep` alternates so every stratum does real work.
        let _ = writeln!(src, "drop{s}(X) :- p{prev}(X), marked{s}(X).");
        let _ = writeln!(src, "marked{s}(v{}).", s % facts.max(1));
        let _ = writeln!(src, "p{s}(X) :- p{prev}(X), not drop{s}(X).");
    }
    src
}

/// E9: many sparse sets over a large universe plus a slowly-growing
/// recursive predicate. Each fixpoint round derives one new `grow`
/// atom; the ∀-trigger restricts re-evaluation to the few sets
/// containing it, while the unindexed driver re-checks every set.
pub fn forall_trigger(num_sets: usize, universe: usize, set_size: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    for i in 0..num_sets {
        let elems: Vec<String> = (0..set_size)
            .map(|_| format!("a{}", rng.gen_range(0..universe)))
            .collect();
        let _ = writeln!(src, "g{}({{{}}}).", i % 2, elems.join(", "));
    }
    for i in 0..universe.saturating_sub(1) {
        let _ = writeln!(src, "next(a{i}, a{}).", i + 1);
    }
    src.push_str(
        "seedling(a0).
         grow(X) :- seedling(X).
         grow(X) :- next(Y, X), grow(Y).
         all_grown(S) :- g0(S), forall U in S: grow(U).
         all_grown(S) :- g1(S), forall U in S: grow(U).\n",
    );
    src
}

/// E12: a directed chain `n0 → n1 → … → n(nodes-1)` with the
/// transitive-closure rules. Acyclic, so the materialized closure is
/// the `O(n²/2)` ancestor relation and every update edge creates real
/// new paths — the incremental-maintenance stress workload.
pub fn chain_tc(nodes: usize) -> String {
    let mut src = String::new();
    for i in 0..nodes.saturating_sub(1) {
        let _ = writeln!(src, "e(n{i}, n{}).", i + 1);
    }
    src.push_str("t(X, Y) :- e(X, Y).\nt(X, Z) :- e(X, Y), t(Y, Z).\n");
    src
}

/// E12: `k` random single-edge updates over a `nodes`-node graph
/// (endpoint indices), deterministic in `seed`. Edges already present
/// in the [`chain_tc`] base (`i → i+1`) and repeats are rejected, so
/// every update is a genuinely new fact — a duplicate would make the
/// engine's `update()` a no-op and skew the incremental-run count the
/// E12 report asserts on.
pub fn update_edges(nodes: usize, k: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(nodes >= 3, "too few nodes to draw non-chain edges");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(k);
    while out.len() < k {
        let edge = (rng.gen_range(0..nodes), rng.gen_range(0..nodes));
        if edge.1 == edge.0 + 1 || out.contains(&edge) {
            continue;
        }
        out.push(edge);
    }
    out
}

/// E13: the chain of [`chain_tc`] with *left-linear* transitive
/// closure — `t(X, Z) :- t(X, Y), e(Y, Z)` — the demand-friendly
/// orientation. Under the magic-set rewrite of a `?- t(src, X)` query
/// the recursive call keeps its first argument bound to `src`, so
/// demand never leaves the seed and the derivation is `O(reach(src))`.
/// (The right-linear form of [`chain_tc`] re-demands every suffix
/// node, materializing the whole sub-closure cone — sound, but the
/// known-degenerate case; see EXPERIMENTS.md E13.)
pub fn chain_tc_left(nodes: usize) -> String {
    let mut src = String::new();
    for i in 0..nodes.saturating_sub(1) {
        let _ = writeln!(src, "e(n{i}, n{}).", i + 1);
    }
    src.push_str("t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).\n");
    src
}

/// E13: `k` point-query sources over a `nodes`-node graph — the query
/// stream `?- t(n_src, X).` for the demand-vs-materialization
/// comparison. Deterministic in `seed`; sources repeat only if
/// `k > nodes`, and every source is drawn uniformly, so the demand
/// side answers queries of widely varying reach.
pub fn point_query_sources(nodes: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k).map(|_| rng.gen_range(0..nodes)).collect()
}

/// E14: a stream of `k` point-query sources with *overlapping
/// demand*: `distinct` sources are drawn (without replacement) from
/// the low end of the chain — long, strongly overlapping reach
/// cones — and the stream cycles through them in seed-shuffled order,
/// so most queries repeat an already-demanded source. The retained
/// demand space answers repeats as pure reads and absorbs interleaved
/// EDB updates through the seeded continuation; the cold baseline
/// re-derives each source's whole cone every time.
pub fn overlapping_sources(nodes: usize, k: usize, distinct: usize, seed: u64) -> Vec<usize> {
    assert!(
        distinct >= 1 && distinct <= nodes / 4,
        "sources come from the low quarter"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = Vec::with_capacity(distinct);
    while pool.len() < distinct {
        let s = rng.gen_range(0..nodes / 4);
        if !pool.contains(&s) {
            pool.push(s);
        }
    }
    (0..k)
        .map(|i| pool[(i + rng.gen_range(0..distinct)) % distinct])
        .collect()
}

/// E16: a cyclic three-way join whose *textual* body order is
/// adversarial — the rule lists the two big bipartite layers first
/// and the tiny corner-closing relation last:
///
/// ```text
/// out(X, Z) :- big_a(X, Y), big_b(Y, Z), small_c(Z, X).
/// ```
///
/// `big_a` is the complete `srcs × fanout` layer `s_i → m_j`, `big_b`
/// the complete `fanout × srcs` layer `m_j → t_k`, and `small_c`
/// closes only `keep` random `(t, s)` corners. No literal becomes
/// fully bound until two are placed, so the textual order enumerates
/// the whole `big_a ⋈ big_b` cross-section — `srcs · fanout · srcs`
/// pairs — before `small_c` prunes it; a cost-based plan starts at
/// `small_c` (binding both corners at `keep` rows) and touches only
/// `keep · fanout` candidates. Deterministic in `seed` (which corners
/// `small_c` closes).
pub fn triangle_like(srcs: usize, fanout: usize, keep: usize, seed: u64) -> String {
    assert!(keep <= srcs * srcs, "more corners than (t, s) pairs");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    for i in 0..srcs {
        for j in 0..fanout {
            let _ = writeln!(src, "big_a(s{i}, m{j}).");
        }
    }
    for j in 0..fanout {
        for k in 0..srcs {
            let _ = writeln!(src, "big_b(m{j}, t{k}).");
        }
    }
    let mut kept: Vec<(usize, usize)> = Vec::with_capacity(keep);
    while kept.len() < keep {
        let corner = (rng.gen_range(0..srcs), rng.gen_range(0..srcs));
        if !kept.contains(&corner) {
            kept.push(corner);
        }
    }
    for (t, s) in kept {
        let _ = writeln!(src, "small_c(t{t}, s{s}).");
    }
    src.push_str("out(X, Z) :- big_a(X, Y), big_b(Y, Z), small_c(Z, X).\n");
    src
}

/// E10: a non-1NF relation with `rows` tuples whose set attribute has
/// `set_size` elements, plus the unnest rule (Example 4).
pub fn unnest(rows: usize, set_size: usize) -> String {
    let mut src = String::with_capacity(rows * set_size * 8);
    for r in 0..rows {
        let elems: Vec<String> = (0..set_size)
            .map(|i| format!("e{}", (r * 7 + i * 13) % (set_size * 4)))
            .collect();
        let _ = writeln!(src, "r(x{r}, {{{}}}).", elems.join(", "));
    }
    src.push_str("s(X, Y) :- r(X, Ys), Y in Ys.\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_parseable_programs() {
        for src in [
            transitive_closure(6, 1),
            disj_pairs(4, 5, 2),
            positive_depth(2),
            positive_depth(4),
            setof_facts(3),
            setof_grouping(3),
            bom(3, SumStyle::DisjUnion),
            bom(3, SumStyle::Scons),
            bom(3, SumStyle::SconsMin),
            strata_chain(4, 6),
            unnest(10, 4),
            chain_tc(8),
            triangle_like(6, 3, 2, 1),
        ] {
            lps_syntax::parse_program(&src)
                .unwrap_or_else(|e| panic!("{}\n---\n{src}", e.render(&src)));
        }
    }

    #[test]
    fn bom_styles_agree() {
        use lps_core::{Dialect, Value};
        let mut expected: Option<Vec<Vec<Value>>> = None;
        for style in [SumStyle::DisjUnion, SumStyle::Scons, SumStyle::SconsMin] {
            let src = bom(5, style);
            let d = crate::db(&src, Dialect::Elps, lps_engine::SetUniverse::Reject);
            let m = crate::eval(&d);
            let got = m.extension_n("obj_cost", 2);
            assert_eq!(got.len(), 1);
            match &expected {
                None => expected = Some(got),
                Some(e) => assert_eq!(e, &got),
            }
        }
    }

    #[test]
    fn update_edges_are_new_and_distinct() {
        let edges = update_edges(64, 32, 7);
        assert_eq!(edges.len(), 32);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &edges {
            assert_ne!(b, a + 1, "chain edge ({a}, {b}) already exists");
            assert!(seen.insert((a, b)), "duplicate edge ({a}, {b})");
        }
    }

    #[test]
    fn strata_chain_has_k_strata() {
        use lps_core::Dialect;
        // Each stratum drops one distinct value: k=5 strata over 10
        // facts leaves 5 survivors at the top level.
        let src = strata_chain(5, 10);
        let d = crate::db(
            &src,
            Dialect::StratifiedElps,
            lps_engine::SetUniverse::Reject,
        );
        let m = crate::eval(&d);
        assert!(m.stats().strata >= 5);
        assert_eq!(m.count("p5", 1), 5);
    }
}
