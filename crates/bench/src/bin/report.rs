//! Prints the EXPERIMENTS.md series as plain-text tables: one section
//! per experiment, with the workload parameters the paper-index in
//! DESIGN.md §5 prescribes.
//!
//! Run with `cargo run --release -p lps-bench --bin report` (release
//! strongly recommended). Pass experiment ids (e.g. `e3 e5`) to run a
//! subset.

use std::time::Duration;

use lps_bench::workloads::{self, SumStyle};
use lps_bench::{db, db_cfg, eval, median_time, table, time_eval, us};
use lps_core::transform::positive::{compilation_size, compile_positive_paper, normalize_program};
use lps_core::transform::setof::setof_database;
use lps_core::transform::translations::{elps_to_horn_scons, elps_to_horn_union};
use lps_core::{Dialect, Value};
use lps_engine::{EvalConfig, FixpointStrategy, SetUniverse};
use lps_syntax::{parse_program, pretty_program};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("LPS experiment report — see EXPERIMENTS.md for the paper mapping.");
    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e10") {
        e10();
    }
}

fn e1() {
    let examples: &[(&str, &str, &str, usize)] = &[
        (
            "Ex.1 disj",
            "pair({a, b}, {c}). pair({a, b}, {b, c}). pair({}, {a}).
             disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.",
            "disj",
            2,
        ),
        (
            "Ex.2 subset",
            "pair({a}, {a, b}). pair({a, b}, {a}). pair({}, {z}).
             subset(X, Y) :- pair(X, Y), forall U in X: U in Y.",
            "subset",
            2,
        ),
        (
            "Ex.3 union",
            "cand({a}, {b}, {a, b}). cand({a}, {b}, {a, b, c}). cand({}, {}, {}).
             u(X, Y, Z) :- cand(X, Y, Z), (forall U in X: U in Z),
                 (forall V in Y: V in Z), (forall W in Z: (W in X ; W in Y)).",
            "u",
            3,
        ),
        (
            "Ex.4 unnest",
            "r(x1, {p, q}). r(x2, {q}). r(x3, {}). s(X, Y) :- r(X, Ys), Y in Ys.",
            "s",
            2,
        ),
        (
            "Ex.5 sum",
            "input({3, 5, 9}).
             visit(Z) :- input(Z).
             visit(X) :- visit(Z), disj_union(X, _Y, Z).
             sum(S, 0) :- visit(S), S = {}.
             sum(S, N) :- visit(S), S = {N}.
             sum(Z, K) :- visit(Z), disj_union(X, Y, Z), X != {}, Y != {},
                          sum(X, M), sum(Y, N), M + N = K.",
            "sum",
            2,
        ),
        (
            "Ex.6 parts",
            "parts(widget, {bolt, nut, gear}). cost(bolt, 2). cost(nut, 1). cost(gear, 7).
             visit(Y) :- parts(_X, Y).
             visit(X) :- visit(Z), disj_union(X, _Y, Z).
             sum_costs(S, 0) :- visit(S), S = {}.
             sum_costs(S, N) :- visit(S), S = {P}, cost(P, N).
             sum_costs(Z, K) :- visit(Z), disj_union(X, Y, Z), X != {}, Y != {},
                                sum_costs(X, M), sum_costs(Y, N), M + N = K.
             obj_cost(X, N) :- parts(X, Y), sum_costs(Y, N).",
            "obj_cost",
            2,
        ),
    ];
    let mut rows = Vec::new();
    for (name, src, pred, arity) in examples {
        let d = db(src, Dialect::Elps, SetUniverse::Reject);
        let (t, m) = time_eval(&d);
        rows.push(vec![
            name.to_string(),
            m.count(pred, *arity).to_string(),
            m.stats().facts_derived.to_string(),
            m.stats().iterations.to_string(),
            us(t),
        ]);
    }
    print!(
        "{}",
        table(
            "E1: paper examples (Examples 1-6)",
            &["example", "answers", "facts", "rounds", "time_us"],
            &rows
        )
    );
}

fn e2() {
    let mut rows = Vec::new();
    for &n in &[16usize, 64, 256, 1024] {
        let src = workloads::transitive_closure(n, 7);
        let mut cells = vec![n.to_string()];
        for strategy in [FixpointStrategy::Naive, FixpointStrategy::SemiNaive] {
            let d = db_cfg(
                &src,
                Dialect::Elps,
                EvalConfig {
                    strategy,
                    ..EvalConfig::default()
                },
            );
            let (t, m) = time_eval(&d);
            cells.push(us(t));
            cells.push(m.stats().iterations.to_string());
        }
        rows.push(cells);
    }
    print!(
        "{}",
        table(
            "E2: naive vs semi-naive (transitive closure), Theorem 5",
            &[
                "nodes",
                "naive_us",
                "naive_rounds",
                "semi_us",
                "semi_rounds"
            ],
            &rows
        )
    );
}

fn e3() {
    let mut rows = Vec::new();
    for &m in &[2usize, 3, 4, 5, 8, 12] {
        let src = workloads::disj_pairs(m, 4, 11);
        let mut cells = vec![m.to_string()];
        let t_direct = median_time(3, || {
            let d = db(&src, Dialect::Elps, SetUniverse::Reject);
            std::hint::black_box(eval(&d).count("disj", 2));
        });
        cells.push(us(t_direct));
        if m <= 5 {
            // The translations' accumulators enumerate subsets:
            // exponential in m, so the sweep stops at 5.
            let parsed = parse_program(&src).unwrap();
            let horn_union = pretty_program(&elps_to_horn_union(&parsed).unwrap());
            let horn_scons = pretty_program(&elps_to_horn_scons(&parsed).unwrap());
            let direct_count = eval(&db(&src, Dialect::Elps, SetUniverse::Reject)).count("disj", 2);
            for program in [&horn_union, &horn_scons] {
                let t = median_time(3, || {
                    let d = db(program, Dialect::Elps, SetUniverse::Reject);
                    std::hint::black_box(eval(&d).count("disj", 2));
                });
                cells.push(us(t));
                let count = eval(&db(program, Dialect::Elps, SetUniverse::Reject)).count("disj", 2);
                assert_eq!(count, direct_count, "translations agree");
            }
            cells.push(direct_count.to_string());
        } else {
            cells.push("-".into());
            cells.push("-".into());
            cells.push(
                eval(&db(&src, Dialect::Elps, SetUniverse::Reject))
                    .count("disj", 2)
                    .to_string(),
            );
        }
        rows.push(cells);
    }
    print!(
        "{}",
        table(
            "E3: Theorem 10 — direct ELPS vs Horn+union vs Horn+scons (disj workload)",
            &[
                "universe",
                "direct_us",
                "horn_union_us",
                "horn_scons_us",
                "answers"
            ],
            &rows
        )
    );
}

fn e4() {
    let mut rows = Vec::new();
    for &d in &[1usize, 2, 3, 4, 5] {
        let src = workloads::positive_depth(d);
        let parsed = parse_program(&src).unwrap();
        let paper = compile_positive_paper(&parsed).unwrap();
        let opt = normalize_program(&parsed).unwrap();
        let (paper_clauses, paper_aux) = compilation_size(&parsed, &paper);
        let (opt_clauses, opt_aux) = compilation_size(&parsed, &opt);
        let paper_src = pretty_program(&paper);
        let t_paper = median_time(3, || {
            let db = db(&paper_src, Dialect::Elps, SetUniverse::ActiveSets);
            std::hint::black_box(eval(&db).stats().facts_derived);
        });
        let t_opt = median_time(3, || {
            let db = db(&src, Dialect::Elps, SetUniverse::ActiveSets);
            std::hint::black_box(eval(&db).stats().facts_derived);
        });
        rows.push(vec![
            d.to_string(),
            format!("{paper_clauses}/{paper_aux}"),
            format!("{opt_clauses}/{opt_aux}"),
            us(t_paper),
            us(t_opt),
        ]);
    }
    print!(
        "{}",
        table(
            "E4: Theorem 6 compilation — paper construction vs normalizer (clauses/aux preds)",
            &[
                "depth",
                "paper_cl/aux",
                "opt_cl/aux",
                "paper_eval_us",
                "opt_eval_us"
            ],
            &rows
        )
    );
}

fn e5() {
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 6, 8, 10] {
        let grouping_src = workloads::setof_grouping(n);
        let t_group = median_time(3, || {
            let d = db(&grouping_src, Dialect::StratifiedElps, SetUniverse::Reject);
            std::hint::black_box(eval(&d).count("collected", 2));
        });
        let facts = workloads::setof_facts(n);
        let t_neg = median_time(3, || {
            let d = setof_database(&facts, "a", "the_set", n).unwrap();
            std::hint::black_box(eval(&d).count("the_set", 1));
        });
        rows.push(vec![n.to_string(), us(t_group), us(t_neg)]);
    }
    print!(
        "{}",
        table(
            "E5: set construction — LDL grouping vs §4.2 negation-over-powerset",
            &["n", "grouping_us", "negation_us"],
            &rows
        )
    );
}

fn e6() {
    let mut rows = Vec::new();
    for &k in &[3usize, 5, 7, 9, 11] {
        let mut cells = vec![k.to_string()];
        let mut answer: Option<Vec<Vec<Value>>> = None;
        for style in [SumStyle::DisjUnion, SumStyle::Scons, SumStyle::SconsMin] {
            // disj_union is Θ(3^k): past k=7 a single run takes tens
            // of seconds; report the tractable prefix only.
            if matches!(style, SumStyle::DisjUnion) && k > 7 {
                cells.push("-".into());
                continue;
            }
            let src = workloads::bom(k, style);
            let t = median_time(3, || {
                let d = db(&src, Dialect::Elps, SetUniverse::Reject);
                std::hint::black_box(eval(&d).count("obj_cost", 2));
            });
            cells.push(us(t));
            let got =
                eval(&db(&src, Dialect::Elps, SetUniverse::Reject)).extension_n("obj_cost", 2);
            match &answer {
                None => answer = Some(got),
                Some(a) => assert_eq!(a, &got, "formulations agree"),
            }
        }
        rows.push(cells);
    }
    print!(
        "{}",
        table(
            "E6: Example 5/6 aggregation — disj_union vs scons vs scons_min",
            &["parts", "disj_union_us", "scons_us", "scons_min_us"],
            &rows
        )
    );
}

fn e7() {
    use lps_term::{setops, TermStore};
    let mut rows = Vec::new();
    for &n in &[8usize, 64, 512, 4096] {
        let mut store = TermStore::new();
        let elems: Vec<_> = (0..n as i64).map(|i| store.int(i)).collect();
        let evens: Vec<_> = elems.iter().copied().step_by(2).collect();
        let set_all = store.set(elems);
        let set_even = store.set(evens);
        let needle = store.int(n as i64 / 2);
        let reps = 10_000;
        let t_member = median_time(3, || {
            for _ in 0..reps {
                std::hint::black_box(setops::member(&store, needle, set_all));
            }
        });
        let t_subset = median_time(3, || {
            for _ in 0..reps {
                std::hint::black_box(setops::subset(&store, set_even, set_all));
            }
        });
        let set_all_again = {
            let mut st2 = store.clone();
            let elems2: Vec<_> = (0..n as i64).map(|i| st2.int(i)).collect();
            st2.set(elems2)
        };
        let v1 = Value::from_store(&store, set_all);
        let v2 = Value::from_store(&store, set_all);
        let t_eq_interned = median_time(3, || {
            for _ in 0..reps {
                std::hint::black_box(set_all == set_all_again);
            }
        });
        let t_eq_struct = median_time(3, || {
            for _ in 0..reps {
                std::hint::black_box(v1 == v2);
            }
        });
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", t_member.as_secs_f64() * 1e9 / reps as f64),
            format!("{:.1}", t_subset.as_secs_f64() * 1e9 / reps as f64),
            format!("{:.1}", t_eq_interned.as_secs_f64() * 1e9 / reps as f64),
            format!("{:.1}", t_eq_struct.as_secs_f64() * 1e9 / reps as f64),
        ]);
    }
    print!(
        "{}",
        table(
            "E7: set-op microbenches (ns/op) — hash-consing ablation in the last two columns",
            &[
                "card",
                "member_ns",
                "subset_ns",
                "eq_interned_ns",
                "eq_structural_ns"
            ],
            &rows
        )
    );
}

fn e8() {
    let mut rows = Vec::new();
    for &k in &[2usize, 8, 16, 32] {
        let src = workloads::strata_chain(k, 64);
        let d = db(&src, Dialect::StratifiedElps, SetUniverse::Reject);
        let (t, m) = time_eval(&d);
        rows.push(vec![
            k.to_string(),
            m.stats().strata.to_string(),
            m.stats().facts_derived.to_string(),
            us(t),
        ]);
    }
    print!(
        "{}",
        table(
            "E8: stratified chains — k negation strata over 64 facts",
            &["k", "strata", "facts", "time_us"],
            &rows
        )
    );
}

fn e9() {
    let mut rows = Vec::new();
    for &sets in &[200usize, 800, 2000, 5000] {
        let src = workloads::forall_trigger(sets, 64, 3, 5);
        let mut cells = vec![sets.to_string()];
        for trigger in [true, false] {
            let t = median_time(3, || {
                let d = db_cfg(
                    &src,
                    Dialect::Elps,
                    EvalConfig {
                        forall_trigger_index: trigger,
                        ..EvalConfig::default()
                    },
                );
                std::hint::black_box(eval(&d).count("all_grown", 1));
            });
            cells.push(us(t));
        }
        rows.push(cells);
    }
    print!(
        "{}",
        table(
            "E9: (∀x∈X) semi-naive trigger — inverted index vs full recompute",
            &["sets", "indexed_us", "recompute_us"],
            &rows
        )
    );
}

fn e10() {
    let mut rows = Vec::new();
    for &(r, a) in &[(1000usize, 4usize), (1000, 64), (10_000, 4), (10_000, 64)] {
        let src = workloads::unnest(r, a);
        let d = db(&src, Dialect::Elps, SetUniverse::Reject);
        let (t, m) = time_eval(&d);
        let out_rows = m.count("s", 2);
        let per_row = Duration::from_secs_f64(t.as_secs_f64() / out_rows.max(1) as f64);
        rows.push(vec![
            r.to_string(),
            a.to_string(),
            out_rows.to_string(),
            us(t),
            format!("{:.0}", per_row.as_secs_f64() * 1e9),
        ]);
    }
    print!(
        "{}",
        table(
            "E10: unnest throughput (Example 4)",
            &["rows", "set_arity", "out_rows", "time_us", "ns_per_out_row"],
            &rows
        )
    );
}
