//! Prints the EXPERIMENTS.md series as plain-text tables: one section
//! per experiment, with the workload parameters the paper-index in
//! DESIGN.md §5 prescribes.
//!
//! Run with `cargo run --release -p lps-bench --bin report` (release
//! strongly recommended). Pass experiment ids (e.g. `e3 e5`) to run a
//! subset. Flags:
//!
//! * `--json` — additionally write the tables to `BENCH_report.json`
//!   in the current directory, so perf baselines can be committed and
//!   compared across commits;
//! * `--smoke` — reduced parameter sweeps (seconds, not minutes; the
//!   CI bench smoke runs `--json --smoke`). Smoke JSON goes to
//!   `BENCH_report.smoke.json` so it can never clobber the committed
//!   full-parameter baseline.

use std::time::{Duration, Instant};

use lps_bench::workloads::{self, SumStyle};
use lps_bench::{db, db_cfg, eval, median_time, time_eval, us, Report};
use lps_core::transform::positive::{compilation_size, compile_positive_paper, normalize_program};
use lps_core::transform::setof::setof_database;
use lps_core::transform::translations::{elps_to_horn_scons, elps_to_horn_union};
use lps_core::{Dialect, Model, Value};
use lps_engine::{EvalConfig, FixpointStrategy, SetUniverse};
use lps_syntax::{parse_program, pretty_program};

fn main() {
    let mut json = false;
    let mut smoke = false;
    let mut ids: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            other => ids.push(other.to_owned()),
        }
    }
    let want = |id: &str| ids.is_empty() || ids.iter().any(|a| a.eq_ignore_ascii_case(id));
    let mut rep = Report::new(json, smoke);
    rep.set_experiments(&ids);

    println!("LPS experiment report — see EXPERIMENTS.md for the paper mapping.");
    if want("e1") {
        e1(&mut rep);
    }
    if want("e2") {
        e2(&mut rep);
    }
    if want("e3") {
        e3(&mut rep);
    }
    if want("e4") {
        e4(&mut rep);
    }
    if want("e5") {
        e5(&mut rep);
    }
    if want("e6") {
        e6(&mut rep);
    }
    if want("e7") {
        e7(&mut rep);
    }
    if want("e8") {
        e8(&mut rep);
    }
    if want("e9") {
        e9(&mut rep);
    }
    if want("e10") {
        e10(&mut rep);
    }
    if want("e11") {
        e11(&mut rep);
    }
    if want("e12") {
        e12(&mut rep);
    }
    if want("e13") {
        e13(&mut rep);
    }
    if want("e14") {
        e14(&mut rep);
    }
    if want("e15") {
        e15(&mut rep);
    }
    if want("e16") {
        e16(&mut rep);
    }
    if want("e17") {
        e17(&mut rep);
    }
    if want("e18") {
        e18(&mut rep);
    }
    if json {
        // Smoke numbers come from reduced sweeps — keep them out of
        // the committed full-parameter baseline file.
        let path = std::path::Path::new(if smoke {
            "BENCH_report.smoke.json"
        } else {
            "BENCH_report.json"
        });
        rep.write_json(path).expect("write JSON bench report");
        println!("\nwrote {}", path.display());
    }
}

fn e1(rep: &mut Report) {
    let examples: &[(&str, &str, &str, usize)] = &[
        (
            "Ex.1 disj",
            "pair({a, b}, {c}). pair({a, b}, {b, c}). pair({}, {a}).
             disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.",
            "disj",
            2,
        ),
        (
            "Ex.2 subset",
            "pair({a}, {a, b}). pair({a, b}, {a}). pair({}, {z}).
             subset(X, Y) :- pair(X, Y), forall U in X: U in Y.",
            "subset",
            2,
        ),
        (
            "Ex.3 union",
            "cand({a}, {b}, {a, b}). cand({a}, {b}, {a, b, c}). cand({}, {}, {}).
             u(X, Y, Z) :- cand(X, Y, Z), (forall U in X: U in Z),
                 (forall V in Y: V in Z), (forall W in Z: (W in X ; W in Y)).",
            "u",
            3,
        ),
        (
            "Ex.4 unnest",
            "r(x1, {p, q}). r(x2, {q}). r(x3, {}). s(X, Y) :- r(X, Ys), Y in Ys.",
            "s",
            2,
        ),
        (
            "Ex.5 sum",
            "input({3, 5, 9}).
             visit(Z) :- input(Z).
             visit(X) :- visit(Z), disj_union(X, _Y, Z).
             sum(S, 0) :- visit(S), S = {}.
             sum(S, N) :- visit(S), S = {N}.
             sum(Z, K) :- visit(Z), disj_union(X, Y, Z), X != {}, Y != {},
                          sum(X, M), sum(Y, N), M + N = K.",
            "sum",
            2,
        ),
        (
            "Ex.6 parts",
            "parts(widget, {bolt, nut, gear}). cost(bolt, 2). cost(nut, 1). cost(gear, 7).
             visit(Y) :- parts(_X, Y).
             visit(X) :- visit(Z), disj_union(X, _Y, Z).
             sum_costs(S, 0) :- visit(S), S = {}.
             sum_costs(S, N) :- visit(S), S = {P}, cost(P, N).
             sum_costs(Z, K) :- visit(Z), disj_union(X, Y, Z), X != {}, Y != {},
                                sum_costs(X, M), sum_costs(Y, N), M + N = K.
             obj_cost(X, N) :- parts(X, Y), sum_costs(Y, N).",
            "obj_cost",
            2,
        ),
    ];
    let mut rows = Vec::new();
    for (name, src, pred, arity) in examples {
        let d = db(src, Dialect::Elps, SetUniverse::Reject);
        let (t, m) = time_eval(&d);
        rows.push(vec![
            name.to_string(),
            m.count(pred, *arity).to_string(),
            m.stats().facts_derived.to_string(),
            m.stats().iterations.to_string(),
            us(t),
        ]);
    }
    rep.section(
        "e1",
        "E1: paper examples (Examples 1-6)",
        &["example", "answers", "facts", "rounds", "time_us"],
        &rows,
    );
}

fn e2(rep: &mut Report) {
    let sizes: &[usize] = if rep.smoke {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let src = workloads::transitive_closure(n, 7);
        let mut cells = vec![n.to_string()];
        for strategy in [FixpointStrategy::Naive, FixpointStrategy::SemiNaive] {
            let d = db_cfg(
                &src,
                Dialect::Elps,
                EvalConfig {
                    strategy,
                    ..EvalConfig::default()
                },
            );
            let (t, m) = time_eval(&d);
            cells.push(us(t));
            cells.push(m.stats().iterations.to_string());
        }
        rows.push(cells);
    }
    rep.section(
        "e2",
        "E2: naive vs semi-naive (transitive closure), Theorem 5",
        &[
            "nodes",
            "naive_us",
            "naive_rounds",
            "semi_us",
            "semi_rounds",
        ],
        &rows,
    );
}

fn e3(rep: &mut Report) {
    let universes: &[usize] = if rep.smoke {
        &[2, 3]
    } else {
        &[2, 3, 4, 5, 8, 12]
    };
    let mut rows = Vec::new();
    for &m in universes {
        let src = workloads::disj_pairs(m, 4, 11);
        let mut cells = vec![m.to_string()];
        let t_direct = median_time(3, || {
            let d = db(&src, Dialect::Elps, SetUniverse::Reject);
            std::hint::black_box(eval(&d).count("disj", 2));
        });
        cells.push(us(t_direct));
        if m <= 5 {
            // The translations' accumulators enumerate subsets:
            // exponential in m, so the sweep stops at 5.
            let parsed = parse_program(&src).unwrap();
            let horn_union = pretty_program(&elps_to_horn_union(&parsed).unwrap());
            let horn_scons = pretty_program(&elps_to_horn_scons(&parsed).unwrap());
            let direct_count = eval(&db(&src, Dialect::Elps, SetUniverse::Reject)).count("disj", 2);
            for program in [&horn_union, &horn_scons] {
                let t = median_time(3, || {
                    let d = db(program, Dialect::Elps, SetUniverse::Reject);
                    std::hint::black_box(eval(&d).count("disj", 2));
                });
                cells.push(us(t));
                let count = eval(&db(program, Dialect::Elps, SetUniverse::Reject)).count("disj", 2);
                assert_eq!(count, direct_count, "translations agree");
            }
            cells.push(direct_count.to_string());
        } else {
            cells.push("-".into());
            cells.push("-".into());
            cells.push(
                eval(&db(&src, Dialect::Elps, SetUniverse::Reject))
                    .count("disj", 2)
                    .to_string(),
            );
        }
        rows.push(cells);
    }
    rep.section(
        "e3",
        "E3: Theorem 10 — direct ELPS vs Horn+union vs Horn+scons (disj workload)",
        &[
            "universe",
            "direct_us",
            "horn_union_us",
            "horn_scons_us",
            "answers",
        ],
        &rows,
    );
}

fn e4(rep: &mut Report) {
    let depths: &[usize] = if rep.smoke { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let mut rows = Vec::new();
    for &d in depths {
        let src = workloads::positive_depth(d);
        let parsed = parse_program(&src).unwrap();
        let paper = compile_positive_paper(&parsed).unwrap();
        let opt = normalize_program(&parsed).unwrap();
        let (paper_clauses, paper_aux) = compilation_size(&parsed, &paper);
        let (opt_clauses, opt_aux) = compilation_size(&parsed, &opt);
        let paper_src = pretty_program(&paper);
        let t_paper = median_time(3, || {
            let db = db(&paper_src, Dialect::Elps, SetUniverse::ActiveSets);
            std::hint::black_box(eval(&db).stats().facts_derived);
        });
        let t_opt = median_time(3, || {
            let db = db(&src, Dialect::Elps, SetUniverse::ActiveSets);
            std::hint::black_box(eval(&db).stats().facts_derived);
        });
        rows.push(vec![
            d.to_string(),
            format!("{paper_clauses}/{paper_aux}"),
            format!("{opt_clauses}/{opt_aux}"),
            us(t_paper),
            us(t_opt),
        ]);
    }
    rep.section(
        "e4",
        "E4: Theorem 6 compilation — paper construction vs normalizer (clauses/aux preds)",
        &[
            "depth",
            "paper_cl/aux",
            "opt_cl/aux",
            "paper_eval_us",
            "opt_eval_us",
        ],
        &rows,
    );
}

fn e5(rep: &mut Report) {
    let sizes: &[usize] = if rep.smoke {
        &[2, 4]
    } else {
        &[2, 4, 6, 8, 10]
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let grouping_src = workloads::setof_grouping(n);
        let t_group = median_time(3, || {
            let d = db(&grouping_src, Dialect::StratifiedElps, SetUniverse::Reject);
            std::hint::black_box(eval(&d).count("collected", 2));
        });
        let facts = workloads::setof_facts(n);
        let t_neg = median_time(3, || {
            let d = setof_database(&facts, "a", "the_set", n).unwrap();
            std::hint::black_box(eval(&d).count("the_set", 1));
        });
        rows.push(vec![n.to_string(), us(t_group), us(t_neg)]);
    }
    rep.section(
        "e5",
        "E5: set construction — LDL grouping vs §4.2 negation-over-powerset",
        &["n", "grouping_us", "negation_us"],
        &rows,
    );
}

fn e6(rep: &mut Report) {
    let parts: &[usize] = if rep.smoke { &[3] } else { &[3, 5, 7, 9, 11] };
    let mut rows = Vec::new();
    for &k in parts {
        let mut cells = vec![k.to_string()];
        let mut answer: Option<Vec<Vec<Value>>> = None;
        for style in [SumStyle::DisjUnion, SumStyle::Scons, SumStyle::SconsMin] {
            // disj_union is Θ(3^k): past k=7 a single run takes tens
            // of seconds; report the tractable prefix only.
            if matches!(style, SumStyle::DisjUnion) && k > 7 {
                cells.push("-".into());
                continue;
            }
            let src = workloads::bom(k, style);
            let t = median_time(3, || {
                let d = db(&src, Dialect::Elps, SetUniverse::Reject);
                std::hint::black_box(eval(&d).count("obj_cost", 2));
            });
            cells.push(us(t));
            let got =
                eval(&db(&src, Dialect::Elps, SetUniverse::Reject)).extension_n("obj_cost", 2);
            match &answer {
                None => answer = Some(got),
                Some(a) => assert_eq!(a, &got, "formulations agree"),
            }
        }
        rows.push(cells);
    }
    rep.section(
        "e6",
        "E6: Example 5/6 aggregation — disj_union vs scons vs scons_min",
        &["parts", "disj_union_us", "scons_us", "scons_min_us"],
        &rows,
    );
}

fn e7(rep: &mut Report) {
    use lps_term::{setops, TermStore};
    let cards: &[usize] = if rep.smoke {
        &[8, 64]
    } else {
        &[8, 64, 512, 4096]
    };
    let reps = if rep.smoke { 1_000 } else { 10_000 };
    let mut rows = Vec::new();
    for &n in cards {
        let mut store = TermStore::new();
        let elems: Vec<_> = (0..n as i64).map(|i| store.int(i)).collect();
        let evens: Vec<_> = elems.iter().copied().step_by(2).collect();
        let set_all = store.set(elems);
        let set_even = store.set(evens);
        let needle = store.int(n as i64 / 2);
        let t_member = median_time(3, || {
            for _ in 0..reps {
                std::hint::black_box(setops::member(&store, needle, set_all));
            }
        });
        let t_subset = median_time(3, || {
            for _ in 0..reps {
                std::hint::black_box(setops::subset(&store, set_even, set_all));
            }
        });
        let set_all_again = {
            let mut st2 = store.clone();
            let elems2: Vec<_> = (0..n as i64).map(|i| st2.int(i)).collect();
            st2.set(elems2)
        };
        let v1 = Value::from_store(&store, set_all);
        let v2 = Value::from_store(&store, set_all);
        let t_eq_interned = median_time(3, || {
            for _ in 0..reps {
                std::hint::black_box(set_all == set_all_again);
            }
        });
        let t_eq_struct = median_time(3, || {
            for _ in 0..reps {
                std::hint::black_box(v1 == v2);
            }
        });
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", t_member.as_secs_f64() * 1e9 / reps as f64),
            format!("{:.1}", t_subset.as_secs_f64() * 1e9 / reps as f64),
            format!("{:.1}", t_eq_interned.as_secs_f64() * 1e9 / reps as f64),
            format!("{:.1}", t_eq_struct.as_secs_f64() * 1e9 / reps as f64),
        ]);
    }
    rep.section(
        "e7",
        "E7: set-op microbenches (ns/op) — hash-consing ablation in the last two columns",
        &[
            "card",
            "member_ns",
            "subset_ns",
            "eq_interned_ns",
            "eq_structural_ns",
        ],
        &rows,
    );
}

fn e8(rep: &mut Report) {
    let chain: &[usize] = if rep.smoke { &[2, 8] } else { &[2, 8, 16, 32] };
    let mut rows = Vec::new();
    for &k in chain {
        let src = workloads::strata_chain(k, 64);
        let d = db(&src, Dialect::StratifiedElps, SetUniverse::Reject);
        let (t, m) = time_eval(&d);
        rows.push(vec![
            k.to_string(),
            m.stats().strata.to_string(),
            m.stats().facts_derived.to_string(),
            us(t),
        ]);
    }
    rep.section(
        "e8",
        "E8: stratified chains — k negation strata over 64 facts",
        &["k", "strata", "facts", "time_us"],
        &rows,
    );
}

fn e9(rep: &mut Report) {
    let set_counts: &[usize] = if rep.smoke {
        &[200]
    } else {
        &[200, 800, 2000, 5000]
    };
    let mut rows = Vec::new();
    for &sets in set_counts {
        let src = workloads::forall_trigger(sets, 64, 3, 5);
        let mut cells = vec![sets.to_string()];
        for trigger in [true, false] {
            let t = median_time(3, || {
                let d = db_cfg(
                    &src,
                    Dialect::Elps,
                    EvalConfig {
                        forall_trigger_index: trigger,
                        ..EvalConfig::default()
                    },
                );
                std::hint::black_box(eval(&d).count("all_grown", 1));
            });
            cells.push(us(t));
        }
        rows.push(cells);
    }
    rep.section(
        "e9",
        "E9: (∀x∈X) semi-naive trigger — inverted index vs full recompute",
        &["sets", "indexed_us", "recompute_us"],
        &rows,
    );
}

fn e10(rep: &mut Report) {
    let shapes: &[(usize, usize)] = if rep.smoke {
        &[(1000, 4)]
    } else {
        &[(1000, 4), (1000, 64), (10_000, 4), (10_000, 64)]
    };
    let mut rows = Vec::new();
    for &(r, a) in shapes {
        let src = workloads::unnest(r, a);
        let d = db(&src, Dialect::Elps, SetUniverse::Reject);
        let (t, m) = time_eval(&d);
        let out_rows = m.count("s", 2);
        let per_row = Duration::from_secs_f64(t.as_secs_f64() / out_rows.max(1) as f64);
        rows.push(vec![
            r.to_string(),
            a.to_string(),
            out_rows.to_string(),
            us(t),
            format!("{:.0}", per_row.as_secs_f64() * 1e9),
        ]);
    }
    rep.section(
        "e10",
        "E10: unnest throughput (Example 4)",
        &["rows", "set_arity", "out_rows", "time_us", "ns_per_out_row"],
        &rows,
    );
}

fn e11(rep: &mut Report) {
    // Storage-layer ablation (EXPERIMENTS.md E11): microbenches of the
    // arena-backed `Relation` — bulk insert, indexed probe, membership
    // — plus the executor's probe counters on the E2 workload, which
    // prove the indexed-join path performs zero heap allocations.
    use lps_engine::relation::Relation;
    use lps_term::{TermId, TermStore};

    let cards: &[usize] = if rep.smoke {
        &[1 << 10]
    } else {
        &[1 << 10, 1 << 14, 1 << 17]
    };
    let mut rows = Vec::new();
    for &n in cards {
        let mut store = TermStore::new();
        let ids: Vec<TermId> = (0..n as i64).map(|i| store.int(i)).collect();
        let keys = (n / 16).max(1);
        let t_insert = median_time(3, || {
            let mut r = Relation::new(2);
            r.ensure_index(0b01);
            for (i, &x) in ids.iter().enumerate() {
                r.insert(&[ids[i % keys], x]);
            }
            std::hint::black_box(r.len());
        });
        let mut r = Relation::new(2);
        r.ensure_index(0b01);
        for (i, &x) in ids.iter().enumerate() {
            r.insert(&[ids[i % keys], x]);
        }
        let reps = if rep.smoke { 2_000 } else { 20_000 };
        let t_probe = median_time(3, || {
            let mut hits = 0usize;
            for i in 0..reps {
                hits += r.lookup(0b01, &[ids[i % keys]]).len();
            }
            std::hint::black_box(hits);
        });
        let t_contains = median_time(3, || {
            let mut hits = 0usize;
            for i in 0..reps {
                hits += usize::from(r.contains(&[ids[i % keys], ids[i % n]]));
            }
            std::hint::black_box(hits);
        });
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", t_insert.as_secs_f64() * 1e9 / n as f64),
            format!("{:.1}", t_probe.as_secs_f64() * 1e9 / reps as f64),
            format!("{:.1}", t_contains.as_secs_f64() * 1e9 / reps as f64),
        ]);
    }
    rep.section(
        "e11",
        "E11: relation storage ablation — arena + in-place hashing (ns/op)",
        &["tuples", "insert_ns", "probe_ns", "contains_ns"],
        &rows,
    );

    // Join-path counters: transitive closure drives one indexed probe
    // per (edge, path-prefix) pair; probe_allocs must stay 0.
    let nodes = if rep.smoke { 64 } else { 256 };
    let src = workloads::transitive_closure(nodes, 7);
    let d = db(&src, Dialect::Elps, SetUniverse::Reject);
    let m = eval(&d);
    let s = m.stats();
    assert_eq!(
        s.probe_allocs, 0,
        "the indexed-join path must not heap-allocate"
    );
    rep.section(
        "e11_counters",
        "E11: indexed-join probe counters (transitive closure)",
        &["nodes", "probes", "probe_rows", "probe_allocs"],
        &[vec![
            nodes.to_string(),
            s.index_probes.to_string(),
            s.probe_rows.to_string(),
            s.probe_allocs.to_string(),
        ]],
    );
}

fn e12(rep: &mut Report) {
    // Incremental maintenance (EXPERIMENTS.md E12): k single-fact
    // updates to a materialized chain transitive closure, driven
    // through the Model session (add_fact + update → seeded semi-naive
    // continuation) vs k from-scratch `Database::evaluate` calls of
    // the same growing database. The incremental path must never fall
    // back to a full recompute on this monotone workload, and the
    // final model must be bit-identical (same interned TermId tuples)
    // to the batch model.
    let (nodes, k) = if rep.smoke { (128, 16) } else { (1024, 64) };
    let src = workloads::chain_tc(nodes);
    let edges = workloads::update_edges(nodes, k, 99);
    let atom = |i: usize| Value::atom(format!("n{i}"));

    // Incremental session: materialize once, then fold in each edge.
    let base = db(&src, Dialect::Elps, SetUniverse::Reject);
    let (t_setup, mut model) = time_eval(&base);
    let start = Instant::now();
    for &(a, b) in &edges {
        model.add_fact("e", &[atom(a), atom(b)]).expect("add_fact");
        model.update().expect("incremental update");
    }
    let t_incr = start.elapsed();
    let cum = model.stats();
    assert_eq!(
        cum.incremental_runs, k,
        "the incremental path must not fall back to a full recompute \
         on the E12 workload"
    );

    // From-scratch: re-evaluate the whole database after every edge,
    // exactly what a session had to do before the update path existed.
    let mut scratch = db(&src, Dialect::Elps, SetUniverse::Reject);
    let start = Instant::now();
    let mut batch: Option<Model> = None;
    for &(a, b) in &edges {
        scratch.add_fact("e", &[atom(a), atom(b)]);
        batch = Some(eval(&scratch));
    }
    let t_scratch = start.elapsed();
    let batch = batch.expect("k >= 1");

    // Bit-identical models: same interned TermId tuples.
    let id_rows = |m: &Model| -> Vec<Vec<lps_term::TermId>> {
        let engine = m.engine();
        let t = engine.lookup_pred("t", 2).expect("t is defined");
        let mut rows: Vec<Vec<lps_term::TermId>> = engine.rows(t).map(<[_]>::to_vec).collect();
        rows.sort();
        rows
    };
    assert_eq!(
        id_rows(&model),
        id_rows(&batch),
        "incremental model must be bit-identical to the batch model"
    );

    let speedup = t_scratch.as_secs_f64() / t_incr.as_secs_f64().max(1e-9);
    if !rep.smoke {
        // The acceptance bar for the update path (observed ≈120×; the
        // smoke sweep is too short to time reliably, so it only checks
        // the fallback and equality invariants above).
        assert!(
            speedup >= 10.0,
            "incremental updates must be ≥10× faster than from-scratch \
             re-evaluation (got {speedup:.1}×)"
        );
    }
    rep.section(
        "e12",
        "E12: incremental maintenance — k single-fact updates vs from-scratch (chain TC)",
        &[
            "nodes",
            "k",
            "setup_us",
            "incr_total_us",
            "scratch_total_us",
            "speedup",
            "incr_runs",
            "seed_facts",
        ],
        &[vec![
            nodes.to_string(),
            k.to_string(),
            us(t_setup),
            us(t_incr),
            us(t_scratch),
            format!("{speedup:.1}"),
            cum.incremental_runs.to_string(),
            cum.delta_seed_facts.to_string(),
        ]],
    );
}

fn e13(rep: &mut Report) {
    // Demand-driven point queries (EXPERIMENTS.md E13): a stream of k
    // point queries `?- t(src, X)` against the chain transitive
    // closure, answered two ways. Demand: a never-materialized session
    // compiles the magic-set plan for the `bf` adornment once, then
    // seeds one magic fact per query and derives only the tuples
    // reachable from `src`. Full: materialize the whole O(n²/2)
    // closure once — what every query paid before the demand
    // subsystem — then filter per query (engine-side row filtering,
    // cheaper than the old lpsi extension-clone path, so the
    // comparison favors the full side). Both sides are timed
    // median-of-3 over fresh sessions. The main sweep uses the
    // left-linear closure — `t(X, Z) :- t(X, Y), e(Y, Z)` — whose
    // rewrite keeps demand at the seed under any SIPS; the
    // right-linear orientation (the old caveat case) is checked below
    // and timed against left-linear in E16, now that the cost-based
    // SIPS gives it a selective rewrite too. The workload is set-free:
    // the demand path must never fall back, and every query's answers
    // must match the materialized model exactly.
    let (nodes, k) = if rep.smoke { (128, 8) } else { (1024, 32) };
    let src = workloads::chain_tc_left(nodes);
    let sources = workloads::point_query_sources(nodes, k, 17);
    let atom = |i: usize| Value::atom(format!("n{i}"));

    // Demand side: plan compiled on the first query, cached after.
    // Median-of-3 over fresh sessions (each pass pays the first-query
    // compile + derive and the k−1 continuations), so one scheduler
    // hiccup cannot skew the headline ratio.
    let base = db(&src, Dialect::Elps, SetUniverse::Reject);
    let mut demand_rows: Vec<Vec<Vec<Value>>> = Vec::with_capacity(k);
    let mut demand_times = Vec::with_capacity(3);
    let mut session = base.session().expect("session loads");
    for pass in 0..3 {
        let mut fresh = base.session().expect("session loads");
        let start = Instant::now();
        let mut rows: Vec<Vec<Vec<Value>>> = Vec::with_capacity(k);
        for &s in &sources {
            let ans = fresh
                .query("t", &[Some(atom(s)), None])
                .expect("demand query");
            rows.push(ans.rows);
        }
        demand_times.push(start.elapsed());
        if pass == 0 {
            demand_rows = rows;
            session = fresh;
        }
    }
    demand_times.sort();
    let t_demand = demand_times[1];
    let cum = session.stats();
    assert_eq!(
        cum.demand_fallbacks, 0,
        "the set-free E13 workload must never fall back to full \
         materialization"
    );
    // One magic seed per *distinct* source: under retained demand
    // spaces a repeated source is a duplicate seed, and duplicates
    // must not inflate the counter (the insert-tied accounting).
    let distinct_sources = sources
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert_eq!(
        cum.magic_facts_seeded, distinct_sources,
        "one magic seed per distinct query constant"
    );
    assert_eq!(
        cum.demand_continuations,
        k - 1,
        "every query after the first continues over the retained space"
    );
    assert!(
        cum.adornments_compiled >= 1,
        "the bf adornment compiles once"
    );

    // Full-materialization side, same median-of-3 (each pass pays the
    // whole-closure materialization plus the per-query filters).
    let mut full_times = Vec::with_capacity(3);
    let mut full_total = 0usize;
    let mut full = None;
    for pass in 0..3 {
        let full_db = db(&src, Dialect::Elps, SetUniverse::Reject);
        let start = Instant::now();
        let model = eval(&full_db);
        let mut total = 0usize;
        for &s in &sources {
            let engine = model.engine();
            let t = engine.lookup_pred("t", 2).expect("t is defined");
            let want = atom(s);
            total += engine
                .rows(t)
                .filter(|row| Value::from_store(engine.store(), row[0]) == want)
                .count();
        }
        full_times.push(start.elapsed());
        if pass == 0 {
            full_total = total;
            full = Some(model);
        }
    }
    full_times.sort();
    let t_full = full_times[1];
    let full = full.expect("three passes ran");

    // Answer equivalence, row for row, against the materialized model.
    for (qi, &s) in sources.iter().enumerate() {
        let engine = full.engine();
        let t = engine.lookup_pred("t", 2).expect("t is defined");
        let want_src = atom(s);
        let mut expected: Vec<Vec<Value>> = engine
            .rows(t)
            .filter(|row| Value::from_store(engine.store(), row[0]) == want_src)
            .map(|row| {
                row.iter()
                    .map(|&id| Value::from_store(engine.store(), id))
                    .collect()
            })
            .collect();
        expected.sort();
        assert_eq!(
            demand_rows[qi], expected,
            "demand answers must equal the materialized model's \
             (query {qi}, source n{s})"
        );
    }
    let demand_total: usize = demand_rows.iter().map(Vec::len).sum();
    assert_eq!(demand_total, full_total);

    // Orientation check (the caveat E13 used to carry in prose): the
    // *right-linear* closure `t(X, Z) :- e(X, Y), t(Y, Z)` queried by
    // bound destination also stays on the demand path and answers
    // exactly — the cost-based SIPS visits the recursive literal
    // first, so demand never leaves the queried destination. Both
    // orientations compute the same closure, so the left-linear
    // materialized model is the reference. E16 carries the timed
    // two-orientation comparison.
    let right_src = workloads::chain_tc(nodes);
    let mut right = db(&right_src, Dialect::Elps, SetUniverse::Reject)
        .session()
        .expect("session loads");
    for &s in &sources {
        let dst = atom(nodes - 1 - s);
        let ans = right
            .query("t", &[None, Some(dst.clone())])
            .expect("right-linear fb query");
        let engine = full.engine();
        let t = engine.lookup_pred("t", 2).expect("t is defined");
        let mut expected: Vec<Vec<Value>> = engine
            .rows(t)
            .filter(|row| Value::from_store(engine.store(), row[1]) == dst)
            .map(|row| {
                row.iter()
                    .map(|&id| Value::from_store(engine.store(), id))
                    .collect()
            })
            .collect();
        expected.sort();
        assert_eq!(
            ans.rows,
            expected,
            "right-linear fb answers must equal the materialized model \
             (destination n{})",
            nodes - 1 - s
        );
    }
    assert_eq!(
        right.stats().demand_fallbacks,
        0,
        "the right-linear orientation must stay on the demand path"
    );

    let speedup = t_full.as_secs_f64() / t_demand.as_secs_f64().max(1e-9);
    if !rep.smoke {
        // The acceptance bar for the demand subsystem (observed well
        // above it; the smoke sweep only checks the fallback and
        // equivalence invariants).
        assert!(
            speedup >= 10.0,
            "demand-driven point queries must be ≥10× faster than full \
             materialization + filtering (got {speedup:.1}×)"
        );
    }
    rep.section(
        "e13",
        "E13: demand-driven point queries — magic sets vs full materialization (chain TC)",
        &[
            "nodes",
            "k",
            "demand_total_us",
            "full_total_us",
            "speedup",
            "answers",
            "adornments",
            "magic_seeds",
            "fallbacks",
        ],
        &[vec![
            nodes.to_string(),
            k.to_string(),
            us(t_demand),
            us(t_full),
            format!("{speedup:.1}"),
            demand_total.to_string(),
            cum.adornments_compiled.to_string(),
            cum.magic_facts_seeded.to_string(),
            cum.demand_fallbacks.to_string(),
        ]],
    );
}

fn e14(rep: &mut Report) {
    // Retained demand spaces (EXPERIMENTS.md E14): k point queries
    // with overlapping demand (a few distinct low-chain sources,
    // repeatedly queried) interleaved with single-fact EDB updates
    // (one every `update_every` queries) on a chain transitive
    // closure. Retained: one session whose cached plan keeps its
    // demand space alive — a repeated source is a pure read, and each
    // new edge flows through the seeded semi-naive continuation (the
    // E12 machinery applied to the E13 pipeline). Cold: the identical
    // stream with `demand_retention` off — every query clears the
    // demand space and re-derives its source's whole cone, which is
    // what every query paid before this PR. Both sides must stay
    // fallback-free and answer row-for-row like a materialized model
    // maintained incrementally alongside. Timing is engine-level
    // (interned rows, no Value marshalling) and median-of-3.
    let (nodes, k, distinct) = if rep.smoke {
        (128, 12, 3)
    } else {
        (1024, 64, 4)
    };
    let update_every = if rep.smoke { 4 } else { 8 };
    let src = workloads::chain_tc_left(nodes);
    let sources = workloads::overlapping_sources(nodes, k, distinct, 23);
    let edges = workloads::update_edges(nodes, k / update_every, 41);
    let atom = |i: usize| Value::atom(format!("n{i}"));

    // Reference: materialized model maintained incrementally; the
    // expected answer set is captured with the facts each query step
    // sees, mirroring the query/update interleaving of the measured
    // runs.
    let expected_rows = |m: &Model, source: usize| -> Vec<Vec<Value>> {
        let engine = m.engine();
        let t = engine.lookup_pred("t", 2).expect("t is defined");
        let want = atom(source);
        let mut rows: Vec<Vec<Value>> = engine
            .rows(t)
            .filter(|row| Value::from_store(engine.store(), row[0]) == want)
            .map(|row| {
                row.iter()
                    .map(|&id| Value::from_store(engine.store(), id))
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    };
    let mut reference = eval(&db(&src, Dialect::Elps, SetUniverse::Reject));
    let mut expected: Vec<Vec<Vec<Value>>> = Vec::with_capacity(k);
    for i in 0..k {
        expected.push(expected_rows(&reference, sources[i]));
        if i % update_every == update_every - 1 {
            let (a, b) = edges[i / update_every];
            reference.add_fact("e", &[atom(a), atom(b)]).expect("edge");
            reference.update().expect("incremental reference update");
        }
    }

    // One measured pass over the interleaved stream, at the engine
    // level; answers are lifted to sorted `Value` rows afterwards
    // (outside the timed region) for the equality checks.
    let run_stream = |retention: bool| {
        let cfg = EvalConfig {
            set_universe: SetUniverse::Reject,
            demand_retention: retention,
            ..EvalConfig::default()
        };
        let d = db_cfg(&src, Dialect::Elps, cfg);
        let mut session = d.session().expect("session loads");
        let (t, e, ids) = {
            let engine = session.engine_mut();
            let t = engine.lookup_pred("t", 2).expect("t is defined");
            let e = engine.lookup_pred("e", 2).expect("e is defined");
            let ids: Vec<lps_term::TermId> = (0..nodes)
                .map(|i| engine.store_mut().atom(&format!("n{i}")))
                .collect();
            (t, e, ids)
        };
        let start = Instant::now();
        let mut raw: Vec<lps_engine::RowSet> = Vec::with_capacity(k);
        for i in 0..k {
            let engine = session.engine_mut();
            let ans = engine
                .query(t, &[Some(ids[sources[i]]), None])
                .expect("point query");
            raw.push(ans.rows);
            if i % update_every == update_every - 1 {
                let (a, b) = edges[i / update_every];
                engine.fact(e, vec![ids[a], ids[b]]).expect("edge");
            }
        }
        let elapsed = start.elapsed();
        let engine = session.engine();
        let rows: Vec<Vec<Vec<Value>>> = raw
            .iter()
            .map(|set| {
                let mut rows: Vec<Vec<Value>> = set
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|&id| Value::from_store(engine.store(), id))
                            .collect()
                    })
                    .collect();
                rows.sort();
                rows
            })
            .collect();
        (elapsed, rows, session.stats())
    };
    let run_median = |retention: bool| {
        let mut passes: Vec<_> = (0..3).map(|_| run_stream(retention)).collect();
        passes.sort_by_key(|(t, _, _)| *t);
        // Take the median pass whole — its time, rows, and stats stay
        // paired, so a nondeterminism bug would fail the assertions
        // rather than mixing one pass's timing with another's counters.
        passes.swap_remove(1)
    };
    let (t_retained, retained_rows, retained_stats) = run_median(true);
    let (t_cold, cold_rows, cold_stats) = run_median(false);

    // Invariants: no fallbacks on the set-free workload, answers
    // row-for-row equal to the incrementally maintained model, seed
    // accounting tied to real insertions, and every post-compile
    // retained query a continuation.
    assert_eq!(retained_stats.demand_fallbacks, 0, "retained: no fallbacks");
    assert_eq!(cold_stats.demand_fallbacks, 0, "cold: no fallbacks");
    for i in 0..k {
        assert_eq!(
            retained_rows[i], expected[i],
            "retained answers must equal the maintained model \
             (query {i}, source n{})",
            sources[i]
        );
        assert_eq!(
            cold_rows[i], expected[i],
            "cold answers must equal the maintained model \
             (query {i}, source n{})",
            sources[i]
        );
    }
    let distinct_seen = sources
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert_eq!(
        retained_stats.magic_facts_seeded, distinct_seen,
        "retained: one real seed per distinct source"
    );
    assert_eq!(
        retained_stats.demand_continuations,
        k - 1,
        "retained: every query after the first is a continuation"
    );
    assert_eq!(
        cold_stats.demand_continuations, 0,
        "cold: retention off never continues"
    );
    assert_eq!(
        cold_stats.magic_facts_seeded, k,
        "cold: the cleared space re-seeds every query"
    );

    let speedup = t_cold.as_secs_f64() / t_retained.as_secs_f64().max(1e-9);
    if !rep.smoke {
        // The acceptance bar for retained demand spaces (the smoke
        // sweep only checks the invariants above).
        assert!(
            speedup >= 10.0,
            "retained demand spaces must be ≥10× faster than per-query \
             cold demand runs (got {speedup:.1}×)"
        );
    }

    // Plan-cache eviction discipline: bound 1 with two alternating
    // adornments evicts on every query; each re-derivation must be
    // exact — reclaimed spaces never serve stale rows. A small chain
    // keeps the deliberately pathological churn cheap.
    let (ev_nodes, ev_k) = (96, 12);
    let ev_src = workloads::chain_tc_left(ev_nodes);
    let ev_sources = workloads::overlapping_sources(ev_nodes, ev_k, 3, 7);
    let ev_edges = workloads::update_edges(ev_nodes, ev_k, 11);
    let mut ev_reference = eval(&db(&ev_src, Dialect::Elps, SetUniverse::Reject));
    let ev_cfg = EvalConfig {
        set_universe: SetUniverse::Reject,
        demand_plan_cache: 1,
        ..EvalConfig::default()
    };
    let mut ev_session = db_cfg(&ev_src, Dialect::Elps, ev_cfg)
        .session()
        .expect("session loads");
    let mut evictions = 0usize;
    for i in 0..ev_k {
        let source = ev_sources[i];
        let target = ev_nodes - 1 - source;
        // bf query, checked against the reference…
        let ans = ev_session
            .query("t", &[Some(atom(source)), None])
            .expect("bf query");
        evictions += ans.stats.plans_evicted;
        assert_eq!(
            ans.rows,
            expected_rows(&ev_reference, source),
            "eviction churn: bf query {i} must re-derive exactly"
        );
        // …then an fb query, which evicts the bf plan (bound 1).
        let ans = ev_session
            .query("t", &[None, Some(atom(target))])
            .expect("fb query");
        evictions += ans.stats.plans_evicted;
        let engine = ev_reference.engine();
        let t = engine.lookup_pred("t", 2).expect("t is defined");
        let want = atom(target);
        let mut fb_expected: Vec<Vec<Value>> = engine
            .rows(t)
            .filter(|row| Value::from_store(engine.store(), row[1]) == want)
            .map(|row| {
                row.iter()
                    .map(|&id| Value::from_store(engine.store(), id))
                    .collect()
            })
            .collect();
        fb_expected.sort();
        assert_eq!(
            ans.rows, fb_expected,
            "eviction churn: fb query {i} must re-derive exactly"
        );
        let (a, b) = ev_edges[i];
        ev_session.add_fact("e", &[atom(a), atom(b)]).expect("edge");
        ev_reference
            .add_fact("e", &[atom(a), atom(b)])
            .expect("edge");
        ev_reference.update().expect("reference update");
    }
    assert!(
        evictions >= 2 * ev_k - 2,
        "bound 1 with alternating adornments evicts every round \
         (got {evictions})"
    );
    assert_eq!(
        ev_session.stats().demand_fallbacks,
        0,
        "eviction churn stays on the demand path"
    );

    rep.section(
        "e14",
        "E14: retained demand spaces — overlapping point queries + EDB updates (chain TC)",
        &[
            "nodes",
            "k",
            "distinct",
            "retained_total_us",
            "cold_total_us",
            "speedup",
            "continuations",
            "magic_seeds",
            "fallbacks",
            "evictions(b1)",
        ],
        &[vec![
            nodes.to_string(),
            k.to_string(),
            distinct_seen.to_string(),
            us(t_retained),
            us(t_cold),
            format!("{speedup:.1}"),
            retained_stats.demand_continuations.to_string(),
            retained_stats.magic_facts_seeded.to_string(),
            retained_stats.demand_fallbacks.to_string(),
            evictions.to_string(),
        ]],
    );
}

fn e15(rep: &mut Report) {
    // Parallel semi-naive evaluation (EXPERIMENTS.md E15): the same
    // batch fixpoint at 1/2/4/8 worker threads. The join phase of each
    // round fans the parallel-safe delta variants across a scoped
    // worker pool (delta rows partitioned by probe-key hash, worker
    // arenas merged in deterministic order), so the model must be
    // *bit-identical* to the sequential run — asserted below on the
    // interned TermId tuples, every workload, every thread count. The
    // speedup bar (≥2× at 4 threads on the 1024-node chain) only
    // applies where the hardware can express it; on smaller hosts the
    // sweep still validates determinism and reports honest numbers.
    let (chain_nodes, rand_nodes) = if rep.smoke { (160, 96) } else { (1024, 224) };
    let workloads: Vec<(&str, usize, String)> = vec![
        ("chain-tc", chain_nodes, workloads::chain_tc(chain_nodes)),
        (
            "random-tc",
            rand_nodes,
            workloads::transitive_closure(rand_nodes, 17),
        ),
    ];
    let sweep = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut rows = Vec::new();
    for (name, nodes, src) in &workloads {
        let run = |threads: usize| {
            let cfg = EvalConfig {
                set_universe: SetUniverse::Reject,
                threads,
                ..EvalConfig::default()
            };
            let d = db_cfg(src, Dialect::Elps, cfg);
            let mut passes: Vec<(Duration, Model)> = (0..3)
                .map(|_| {
                    let start = Instant::now();
                    let m = eval(&d);
                    (start.elapsed(), m)
                })
                .collect();
            passes.sort_by_key(|(t, _)| *t);
            passes.swap_remove(1)
        };
        let id_rows = |m: &Model| -> Vec<Vec<lps_term::TermId>> {
            let engine = m.engine();
            let t = engine.lookup_pred("t", 2).expect("t is defined");
            let mut rows: Vec<Vec<lps_term::TermId>> = engine.rows(t).map(<[_]>::to_vec).collect();
            rows.sort();
            rows
        };
        let (t_seq, seq_model) = run(1);
        let seq_rows = id_rows(&seq_model);
        let seq_stats = seq_model.stats();
        assert_eq!(
            seq_stats.parallel_rounds, 0,
            "threads=1 takes the exact sequential path"
        );
        let mut t4 = t_seq;
        for &threads in &sweep {
            let (elapsed, model) = if threads == 1 {
                (t_seq, None)
            } else {
                let (elapsed, model) = run(threads);
                (elapsed, Some(model))
            };
            let stats = model.as_ref().map_or(seq_stats, |m| m.stats());
            if let Some(m) = &model {
                // The acceptance criterion: same TermId tuples, bit
                // for bit — both stores interned the same source in
                // the same order, so ids are directly comparable.
                assert_eq!(
                    id_rows(m),
                    seq_rows,
                    "{name}: {threads}-thread model must be bit-identical \
                     to sequential"
                );
                assert!(
                    stats.parallel_rounds > 0,
                    "{name}: the fan-out must engage at {threads} threads"
                );
            }
            if threads == 4 {
                t4 = elapsed;
            }
            rows.push(vec![
                (*name).to_string(),
                nodes.to_string(),
                threads.to_string(),
                us(elapsed),
                format!(
                    "{:.2}",
                    t_seq.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
                ),
                stats.parallel_rounds.to_string(),
                stats.merge_rows.to_string(),
                stats.worker_imbalance.to_string(),
                "yes".to_string(),
            ]);
        }
        if *name == "chain-tc" {
            let speedup = t_seq.as_secs_f64() / t4.as_secs_f64().max(1e-9);
            if !rep.smoke && cores >= 4 {
                assert!(
                    speedup >= 2.0,
                    "chain-tc({nodes}): 4 threads must be ≥2× sequential \
                     on a ≥4-core host (got {speedup:.2}×)"
                );
            } else {
                println!(
                    "  (E15 speedup bar skipped: smoke={}, cores={} — \
                     measured {speedup:.2}× at 4 threads)",
                    rep.smoke, cores
                );
            }
        }
    }
    rep.section(
        "e15",
        "E15: parallel semi-naive — threads sweep, bit-identical models (batch TC)",
        &[
            "workload",
            "nodes",
            "threads",
            "total_us",
            "speedup",
            "par_rounds",
            "merge_rows",
            "imbalance",
            "identical",
        ],
        &rows,
    );
}

fn e16(rep: &mut Report) {
    // Cost-based planning (EXPERIMENTS.md E16), in two parts.
    //
    // Orientation: a stream of point queries against the chain
    // transitive closure in both orientations — left-linear queried by
    // bound source (`?- t(src, X)`, the always-good case) and
    // right-linear queried by bound destination (`?- t(X, dst)`, the
    // old E13 caveat case, degenerate under textual SIPS). The
    // cost-based SIPS visits the right-linear rule's recursive literal
    // first, so demand stays at the destination and the fb stream must
    // land within 2× of the bf stream. Destinations mirror the
    // sources (`dst = n-1-src`), so both sides answer cones of
    // identical size.
    //
    // Adversarial join: `workloads::triangle_like` is a cyclic
    // three-way join listing the two big bipartite layers before the
    // tiny corner-closing relation. With the planner off the plan
    // follows textual order and enumerates the full big_a ⋈ big_b
    // cross-section; with statistics the plan starts at `small_c` and
    // the same model must arrive ≥5× faster, bit-identical (same
    // interned TermId tuples). Timed at the engine level
    // (`Engine::run` on a prepared session), so program lowering —
    // identical on both sides — stays outside the measurement.
    let planner_cfg = |on: bool| EvalConfig {
        set_universe: SetUniverse::Reject,
        cost_planner: on,
        ..EvalConfig::default()
    };

    let (nodes, k) = if rep.smoke { (128, 8) } else { (1024, 32) };
    let sources = workloads::point_query_sources(nodes, k, 17);
    let atom = |i: usize| Value::atom(format!("n{i}"));
    let run_stream = |src: &str, bound_col: usize| {
        let d = db_cfg(src, Dialect::Elps, planner_cfg(true));
        let mut session = d.session().expect("session loads");
        let start = Instant::now();
        let mut total = 0usize;
        for &s in &sources {
            let args = match bound_col {
                0 => vec![Some(atom(s)), None],
                _ => vec![None, Some(atom(nodes - 1 - s))],
            };
            total += session.query("t", &args).expect("point query").rows.len();
        }
        (start.elapsed(), total, session.stats())
    };
    let (t_left, left_total, left_stats) = run_stream(&workloads::chain_tc_left(nodes), 0);
    let (t_right, right_total, right_stats) = run_stream(&workloads::chain_tc(nodes), 1);
    assert_eq!(
        left_total, right_total,
        "mirrored sources answer cones of identical size"
    );
    assert_eq!(left_stats.demand_fallbacks, 0, "left-linear: no fallbacks");
    assert_eq!(
        right_stats.demand_fallbacks, 0,
        "right-linear: no fallbacks"
    );
    assert!(
        right_stats.reorders_applied >= 1,
        "the cost SIPS reorders the right-linear body"
    );
    let orient_ratio = t_right.as_secs_f64() / t_left.as_secs_f64().max(1e-9);
    if !rep.smoke {
        // The acceptance bar: the old degenerate orientation is now an
        // ordinary one (observed ≈1×; textual SIPS blows up by the
        // cone-materialization factor). Smoke sweeps are too short to
        // time reliably and only check the invariants above.
        assert!(
            orient_ratio <= 2.0,
            "right-linear fb queries must land within 2× of left-linear \
             bf queries under the cost SIPS (got {orient_ratio:.2}×)"
        );
    }
    rep.section(
        "e16_orientation",
        "E16: cost-based SIPS — point queries, both TC orientations (chain)",
        &[
            "nodes",
            "k",
            "left_bf_us",
            "right_fb_us",
            "ratio",
            "answers",
            "reorders",
            "fallbacks",
        ],
        &[vec![
            nodes.to_string(),
            k.to_string(),
            us(t_left),
            us(t_right),
            format!("{orient_ratio:.2}"),
            right_total.to_string(),
            right_stats.reorders_applied.to_string(),
            right_stats.demand_fallbacks.to_string(),
        ]],
    );

    let (srcs, fanout, keep) = if rep.smoke { (16, 40, 3) } else { (40, 150, 4) };
    let tri_src = workloads::triangle_like(srcs, fanout, keep, 29);
    let id_rows = |m: &Model| -> Vec<Vec<lps_term::TermId>> {
        let engine = m.engine();
        let out = engine.lookup_pred("out", 2).expect("out is defined");
        let mut rows: Vec<Vec<lps_term::TermId>> = engine.rows(out).map(<[_]>::to_vec).collect();
        rows.sort();
        rows
    };
    let run_tri = |on: bool| {
        let d = db_cfg(&tri_src, Dialect::Elps, planner_cfg(on));
        let mut passes: Vec<(Duration, Model)> = (0..3)
            .map(|_| {
                let mut m = d.session().expect("session loads");
                let start = Instant::now();
                m.engine_mut().run().expect("batch run");
                (start.elapsed(), m)
            })
            .collect();
        passes.sort_by_key(|(t, _)| *t);
        passes.swap_remove(1)
    };
    let (t_on, model_on) = run_tri(true);
    let (t_off, model_off) = run_tri(false);
    assert_eq!(
        id_rows(&model_on),
        id_rows(&model_off),
        "the planner must not change the model, bit for bit"
    );
    let on_stats = model_on.stats();
    assert!(
        on_stats.reorders_applied >= 1,
        "the planner must reorder the adversarial body"
    );
    assert!(
        on_stats.stats_refreshes >= 1,
        "the planner refreshes statistics at least once"
    );
    assert_eq!(
        model_off.stats().reorders_applied,
        0,
        "planner off takes the textual order"
    );
    let tri_speedup = t_off.as_secs_f64() / t_on.as_secs_f64().max(1e-9);
    if !rep.smoke {
        // The acceptance bar for the cost model (observed well above
        // it: the textual plan enumerates srcs/keep times more
        // intermediate pairs).
        assert!(
            tri_speedup >= 5.0,
            "the cost planner must beat textual order ≥5× on the \
             adversarial join (got {tri_speedup:.1}×)"
        );
    }
    rep.section(
        "e16_join",
        "E16: cost-based join order — adversarial three-way join, planner on vs off",
        &[
            "srcs",
            "fanout",
            "keep",
            "planner_us",
            "textual_us",
            "speedup",
            "out_rows",
            "reorders",
            "identical",
        ],
        &[vec![
            srcs.to_string(),
            fanout.to_string(),
            keep.to_string(),
            us(t_on),
            us(t_off),
            format!("{tri_speedup:.1}"),
            model_on.count("out", 2).to_string(),
            on_stats.reorders_applied.to_string(),
            "yes".to_string(),
        ]],
    );
}

fn e17(rep: &mut Report) {
    // Concurrent query serving (EXPERIMENTS.md E17): the wire server
    // from `lps_core::serve` — writer thread + epoch-published
    // snapshots — under N ∈ {1, 2, 4, 8} concurrent clients driving
    // the E14 overlapping point-query stream, interleaved with writer
    // updates (one `F e(..)` fact between query waves). Every served
    // answer must equal, row for row, a sequential reference model
    // maintained incrementally with the same interleaving; barriers
    // separate the fact from the wave so each client's wave k sees the
    // same update prefix. Reported per N: queries/sec over the query
    // phases plus pooled p50/p95/p99 client-side latency, and the
    // server's snapshot hit/miss split. The acceptance bar — ≥2×
    // throughput at 4 clients over 1 — applies off-smoke on ≥4-core
    // hosts only (the E15 gating).
    use lps_core::serve::Client;
    use lps_core::Server;
    use std::net::TcpListener;
    use std::sync::{Arc, Barrier};

    let (nodes, k, distinct, update_every) = if rep.smoke {
        (128, 12, 3, 4)
    } else {
        (512, 48, 4, 8)
    };
    let src = workloads::chain_tc_left(nodes);
    let sources = workloads::overlapping_sources(nodes, k, distinct, 23);
    let waves_n = k / update_every;
    let edges = workloads::update_edges(nodes, waves_n, 41);
    let atom_name = |i: usize| format!("n{i}");
    let atom = |i: usize| Value::atom(atom_name(i));

    // Sequential reference: a materialized model maintained
    // incrementally, queried at the same points of the interleaving.
    // Expected rows are rendered exactly as the wire renders them
    // (sorted `Value` rows joined with ", "), so string equality on
    // the client side is answer-set equality.
    let expected_rows = |m: &Model, source: usize| -> Vec<String> {
        let engine = m.engine();
        let t = engine.lookup_pred("t", 2).expect("t is defined");
        let want = atom(source);
        let mut rows: Vec<Vec<Value>> = engine
            .rows(t)
            .filter(|row| Value::from_store(engine.store(), row[0]) == want)
            .map(|row| {
                row.iter()
                    .map(|&id| Value::from_store(engine.store(), id))
                    .collect()
            })
            .collect();
        rows.sort();
        rows.iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(Value::to_string).collect();
                cells.join(", ")
            })
            .collect()
    };
    let mut reference = eval(&db(&src, Dialect::Elps, SetUniverse::Reject));
    // Wave w = a fact applied before the wave, then `update_every`
    // point queries, each paired with its expected answer lines.
    struct Wave {
        fact: Option<String>,
        queries: Vec<(String, Vec<String>)>,
    }
    let mut waves: Vec<Wave> = Vec::with_capacity(waves_n);
    for w in 0..waves_n {
        let fact = if w == 0 {
            None
        } else {
            let (a, b) = edges[w - 1];
            reference.add_fact("e", &[atom(a), atom(b)]).expect("edge");
            reference.update().expect("incremental reference update");
            Some(format!("e({}, {}).", atom_name(a), atom_name(b)))
        };
        let queries: Vec<(String, Vec<String>)> = (w * update_every..(w + 1) * update_every)
            .map(|i| {
                let s = sources[i];
                (
                    format!("t({}, X).", atom_name(s)),
                    expected_rows(&reference, s),
                )
            })
            .collect();
        waves.push(Wave { fact, queries });
    }
    let waves = Arc::new(waves);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows: Vec<Vec<String>> = Vec::new();
    let (mut qps_1, mut qps_4) = (0.0f64, 0.0f64);
    for &n in &[1usize, 2, 4, 8] {
        // Fresh server per client count, so every sweep point starts
        // from the same cold plan cache and epoch 0.
        let d = db(&src, Dialect::Elps, SetUniverse::Reject);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let server = Server::spawn(listener, &d).expect("server spawns");
        let addr = server.local_addr();
        let barrier = Arc::new(Barrier::new(n + 1));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let waves = Arc::clone(&waves);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lat: Vec<Duration> = Vec::new();
                    for wave in waves.iter() {
                        barrier.wait();
                        for (goal, want) in &wave.queries {
                            let t0 = Instant::now();
                            let got = client
                                .query(goal)
                                .expect("wire io")
                                .expect("query succeeds");
                            lat.push(t0.elapsed());
                            assert_eq!(
                                &got, want,
                                "served answers must equal the sequential \
                                 reference ({goal}, {n} clients)"
                            );
                        }
                        barrier.wait();
                    }
                    lat
                })
            })
            .collect();
        let mut fact_client = Client::connect(addr).expect("connect");
        let mut query_time = Duration::ZERO;
        for wave in waves.iter() {
            if let Some(f) = &wave.fact {
                fact_client
                    .add_fact(f)
                    .expect("wire io")
                    .expect("fact accepted");
            }
            barrier.wait(); // release the wave…
            let t0 = Instant::now();
            barrier.wait(); // …and time it until every client is done
            query_time += t0.elapsed();
        }
        let mut lats: Vec<Duration> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        lats.sort_unstable();
        let pct = |p: f64| lats[((lats.len() - 1) as f64 * p).round() as usize];
        let qps = (n * k) as f64 / query_time.as_secs_f64().max(1e-9);
        if n == 1 {
            qps_1 = qps;
        }
        if n == 4 {
            qps_4 = qps;
        }
        let (hits, misses) = (server.snapshot_hits(), server.snapshot_misses());
        assert!(
            hits > 0,
            "repeated sources must hit the published snapshot lock-free \
             ({n} clients)"
        );
        rows.push(vec![
            n.to_string(),
            (n * k).to_string(),
            format!("{qps:.0}"),
            us(pct(0.50)),
            us(pct(0.95)),
            us(pct(0.99)),
            hits.to_string(),
            misses.to_string(),
            "yes".to_string(),
        ]);
    }

    let scale = qps_4 / qps_1.max(1e-9);
    if !rep.smoke && cores >= 4 {
        // The acceptance bar for concurrent serving: the snapshot hit
        // path is lock-free, so 4 readers must at least double the
        // single-client throughput.
        assert!(
            scale >= 2.0,
            "4 concurrent clients must serve ≥2× the single-client \
             throughput on a ≥4-core host (got {scale:.2}×)"
        );
    } else {
        println!(
            "  (E17 throughput bar skipped: smoke={}, cores={cores}; \
             measured {scale:.2}× at 4 clients)",
            rep.smoke
        );
    }

    rep.section(
        "e17",
        "E17: concurrent query serving — wire clients vs sequential reference (chain TC)",
        &[
            "clients",
            "queries",
            "qps",
            "p50",
            "p95",
            "p99",
            "snap_hits",
            "snap_misses",
            "identical",
        ],
        &rows,
    );
}

fn e18(rep: &mut Report) {
    // Tracing overhead (EXPERIMENTS.md E18): the E2 semi-naive TC
    // workload evaluated under three observability settings —
    //
    //   off:    `EvalConfig::trace = false`; every span site reduces
    //           to one cold branch on the config flag,
    //   armed:  `trace = true` with the global collector disabled:
    //           spans are constructed but record nothing (the second
    //           gate of the two-gate design),
    //   on:     `trace = true`, collector enabled, unsampled: every
    //           stratum/round/fan-out span is timestamped and buffered.
    //
    // Overhead is the median wall-time ratio against `off`. The
    // acceptance bars — armed ≤ 1.02×, on ≤ 1.10× — are asserted
    // off-smoke on the 1024-node workload; smoke sizes finish in
    // microseconds, where timer noise dominates any real effect, so
    // smoke only sanity-checks that tracing stays under 2×.
    let n = if rep.smoke { 128 } else { 1024 };
    let src = workloads::transitive_closure(n, 7);
    let runs = if rep.smoke { 3 } else { 7 };
    let time_with = |trace: bool, collector: bool| -> Duration {
        let d = db_cfg(
            &src,
            Dialect::Elps,
            EvalConfig {
                trace,
                ..EvalConfig::default()
            },
        );
        lps_trace::set_enabled(collector);
        let t = median_time(runs, || {
            let _ = eval(&d);
        });
        lps_trace::set_enabled(false);
        t
    };
    let t_off = time_with(false, false);
    let t_armed = time_with(true, false);
    lps_trace::global().drain(); // count only the on-leg's events
    let t_on = time_with(true, true);
    let events = lps_trace::global().drain().len();
    let dropped = lps_trace::global().dropped();

    let ratio = |t: Duration| t.as_secs_f64() / t_off.as_secs_f64().max(1e-12);
    let (r_armed, r_on) = (ratio(t_armed), ratio(t_on));
    if rep.smoke {
        assert!(
            r_on < 2.0,
            "tracing must not dominate even at smoke sizes (on/off {r_on:.2}×)"
        );
    } else {
        assert!(
            r_armed <= 1.02,
            "trace-off (armed) overhead must stay ≤2% on the 1024-node \
             TC workload (got {r_armed:.3}×)"
        );
        assert!(
            r_on <= 1.10,
            "unsampled trace-on overhead must stay ≤10% on the 1024-node \
             TC workload (got {r_on:.3}×)"
        );
    }

    rep.section(
        "e18",
        "E18: tracing overhead — E2 TC workload, off vs armed vs on (unsampled)",
        &[
            "setting",
            "nodes",
            "median_us",
            "vs_off",
            "events",
            "dropped",
        ],
        &[
            vec![
                "off".into(),
                n.to_string(),
                us(t_off),
                "1.00".into(),
                "0".into(),
                "0".into(),
            ],
            vec![
                "armed".into(),
                n.to_string(),
                us(t_armed),
                format!("{r_armed:.2}"),
                "0".into(),
                "0".into(),
            ],
            vec![
                "on".into(),
                n.to_string(),
                us(t_on),
                format!("{r_on:.2}"),
                events.to_string(),
                dropped.to_string(),
            ],
        ],
    );
}
