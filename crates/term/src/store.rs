//! The hash-consing term store.
//!
//! A [`TermStore`] owns every ground term that exists in a program run:
//! constants, integers, function applications, and finite sets. Each
//! distinct term is stored once and identified by a [`TermId`]. Set
//! payloads are canonicalized (sorted by `TermId`, deduplicated) before
//! interning, so two sets are extensionally equal — the paper's `=ˢ` of
//! Definition 3 — if and only if their `TermId`s are equal.
//!
//! This is the executable counterpart of the paper's Herbrand universe
//! (Definition 7 for LPS, Definition 13 for ELPS): `Uᵃ` is the atoms the
//! program can mention, and `Uˢ` is materialized lazily as evaluation
//! constructs sets.

use crate::symbol::{Symbol, SymbolTable};
use crate::FxHashMap;

/// Identifier of an interned ground term. Ordering is interning order,
/// which is stable within a store and used as the canonical element
/// order inside set payloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(u32);

impl TermId {
    /// Raw index into the store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        TermId(u32::try_from(index).expect("term store overflow"))
    }
}

/// The shape of an interned term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermData {
    /// A named constant of sort *a* (`c_i` in Definition 1).
    Atom(Symbol),
    /// An integer constant of sort *a*. The paper treats arithmetic as
    /// ambient (`m + n = k` in Example 5); integers are ordinary atoms
    /// with builtin predicates defined on them.
    Int(i64),
    /// Application of an uninterpreted function symbol; sort *a*
    /// (Definition 2 case 3; Example 8 explains why functions never
    /// *return* sets).
    App(Symbol, Box<[TermId]>),
    /// A finite set `{t₁, …, tₙ}` — the `{ₙ` constructors of
    /// Definition 1. Payload is sorted by `TermId` and deduplicated.
    Set(Box<[TermId]>),
}

/// Counters describing store contents, used by benches and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total interned terms.
    pub terms: usize,
    /// Interned named constants.
    pub atoms: usize,
    /// Interned integers.
    pub ints: usize,
    /// Interned function applications.
    pub apps: usize,
    /// Interned sets.
    pub sets: usize,
    /// Total elements across all interned set payloads.
    pub set_elements: usize,
}

/// Append-only hash-consing store for ground terms.
#[derive(Default, Debug, Clone)]
pub struct TermStore {
    symbols: SymbolTable,
    terms: Vec<TermData>,
    dedup: FxHashMap<TermData, TermId>,
    /// Inverted index: element id → ids of interned sets containing it.
    /// Powers the semi-naive `(∀x ∈ X)` trigger (experiment E9).
    containing_sets: FxHashMap<TermId, Vec<TermId>>,
    /// All interned sets in interning order — the *active* sort-s
    /// universe that bounded enumeration modes range over.
    set_ids: Vec<TermId>,
    empty_set: Option<TermId>,
}

impl TermStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access the underlying symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table (for fresh-name generation).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    fn intern(&mut self, data: TermData) -> TermId {
        if let Some(&id) = self.dedup.get(&data) {
            return id;
        }
        let id = TermId::from_index(self.terms.len());
        if let TermData::Set(elems) = &data {
            debug_assert!(elems.windows(2).all(|w| w[0] < w[1]), "set not canonical");
            for &e in elems.iter() {
                self.containing_sets.entry(e).or_default().push(id);
            }
            self.set_ids.push(id);
        }
        self.terms.push(data.clone());
        self.dedup.insert(data, id);
        id
    }

    /// Intern a named constant.
    pub fn atom(&mut self, name: &str) -> TermId {
        let sym = self.symbols.intern(name);
        self.intern(TermData::Atom(sym))
    }

    /// Intern a named constant from an already-interned symbol.
    pub fn atom_sym(&mut self, sym: Symbol) -> TermId {
        self.intern(TermData::Atom(sym))
    }

    /// Intern an integer constant.
    pub fn int(&mut self, value: i64) -> TermId {
        self.intern(TermData::Int(value))
    }

    /// Intern a function application `f(args…)`.
    pub fn app(&mut self, f: &str, args: Vec<TermId>) -> TermId {
        let sym = self.symbols.intern(f);
        self.app_sym(sym, args)
    }

    /// Intern a function application from an interned function symbol.
    pub fn app_sym(&mut self, f: Symbol, args: Vec<TermId>) -> TermId {
        self.intern(TermData::App(f, args.into_boxed_slice()))
    }

    /// Intern a finite set, canonicalizing the element list (sort +
    /// dedup). `{b, a, b}` and `{a, b}` produce the same id.
    pub fn set(&mut self, mut elems: Vec<TermId>) -> TermId {
        elems.sort_unstable();
        elems.dedup();
        self.intern(TermData::Set(elems.into_boxed_slice()))
    }

    /// Intern a set from an element list already known to be sorted and
    /// deduplicated. Used by the set-algebra kernels in [`crate::setops`]
    /// which produce canonical output directly; `debug_assert`s guard
    /// the contract.
    pub fn set_canonical(&mut self, elems: Vec<TermId>) -> TermId {
        debug_assert!(elems.windows(2).all(|w| w[0] < w[1]));
        self.intern(TermData::Set(elems.into_boxed_slice()))
    }

    /// The empty set `∅` (the `{₀` constructor).
    pub fn empty_set(&mut self) -> TermId {
        if let Some(id) = self.empty_set {
            return id;
        }
        let id = self.set(Vec::new());
        self.empty_set = Some(id);
        id
    }

    /// The data of an interned term.
    ///
    /// # Panics
    /// Panics if `id` is from a different store.
    #[inline]
    pub fn data(&self, id: TermId) -> &TermData {
        &self.terms[id.index()]
    }

    /// Whether `id` is of sort *s* (a set).
    #[inline]
    pub fn is_set(&self, id: TermId) -> bool {
        matches!(self.data(id), TermData::Set(_))
    }

    /// Whether `id` is of sort *a* (an atom in the two-sorted logic:
    /// named constant, integer, or function application).
    #[inline]
    pub fn is_atomic(&self, id: TermId) -> bool {
        !self.is_set(id)
    }

    /// The canonical (sorted) element slice of a set, or `None` for
    /// atoms.
    #[inline]
    pub fn set_elems(&self, id: TermId) -> Option<&[TermId]> {
        match self.data(id) {
            TermData::Set(elems) => Some(elems),
            _ => None,
        }
    }

    /// Cardinality of a set term.
    pub fn card(&self, id: TermId) -> Option<usize> {
        self.set_elems(id).map(<[TermId]>::len)
    }

    /// All interned sets, in interning order — the *active* fragment of
    /// the Herbrand sort-s universe. Bounded builtin enumeration modes
    /// (`X in`-free positions, `subseteq` with a free side, Theorem-10
    /// translated programs) range over this list.
    pub fn set_ids(&self) -> &[TermId] {
        &self.set_ids
    }

    /// All interned sets that contain `elem`, in interning order.
    /// Returns an empty slice for terms not contained in any set.
    pub fn sets_containing(&self, elem: TermId) -> &[TermId] {
        self.containing_sets
            .get(&elem)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Look up an already-interned named constant without interning:
    /// `None` means no term of this program run mentions `name`, so a
    /// query for it can only have an empty answer. Read-only — usable
    /// against a shared snapshot of the store.
    pub fn find_atom(&self, name: &str) -> Option<TermId> {
        let sym = self.symbols.get(name)?;
        self.dedup.get(&TermData::Atom(sym)).copied()
    }

    /// Look up an already-interned integer without interning (see
    /// [`TermStore::find_atom`]).
    pub fn find_int(&self, value: i64) -> Option<TermId> {
        self.dedup.get(&TermData::Int(value)).copied()
    }

    /// Look up an already-interned set by element list without
    /// interning (see [`TermStore::find_atom`]). The list is
    /// canonicalized (sorted, deduplicated) before the lookup.
    pub fn find_set(&self, mut elems: Vec<TermId>) -> Option<TermId> {
        elems.sort_unstable();
        elems.dedup();
        self.dedup
            .get(&TermData::Set(elems.into_boxed_slice()))
            .copied()
    }

    /// The integer payload of `id` if it is an `Int` atom.
    pub fn as_int(&self, id: TermId) -> Option<i64> {
        match self.data(id) {
            TermData::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Nesting depth of a term: atoms have depth 0, a set's depth is one
    /// more than the maximum depth of its elements (`∅` has depth 1).
    /// LPS proper admits only terms of depth ≤ 1 (§2.1); ELPS admits
    /// any finite depth (§5).
    pub fn depth(&self, id: TermId) -> usize {
        match self.data(id) {
            TermData::Set(elems) => {
                1 + elems
                    .iter()
                    .map(|&e| self.depth(e))
                    .max()
                    .unwrap_or_default()
            }
            TermData::App(_, args) => args.iter().map(|&a| self.depth(a)).max().unwrap_or(0),
            _ => 0,
        }
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the store holds no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over all interned term ids in interning order.
    pub fn ids(&self) -> impl Iterator<Item = TermId> {
        (0..self.terms.len()).map(TermId::from_index)
    }

    /// Summary statistics, used by benches to report universe sizes.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            terms: self.terms.len(),
            ..StoreStats::default()
        };
        for t in &self.terms {
            match t {
                TermData::Atom(_) => stats.atoms += 1,
                TermData::Int(_) => stats.ints += 1,
                TermData::App(..) => stats.apps += 1,
                TermData::Set(elems) => {
                    stats.sets += 1;
                    stats.set_elements += elems.len();
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_are_hash_consed() {
        let mut s = TermStore::new();
        assert_eq!(s.atom("a"), s.atom("a"));
        assert_ne!(s.atom("a"), s.atom("b"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn ints_are_hash_consed() {
        let mut s = TermStore::new();
        assert_eq!(s.int(7), s.int(7));
        assert_ne!(s.int(7), s.int(-7));
    }

    #[test]
    fn apps_compare_structurally() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        let b = s.atom("b");
        let f_ab1 = s.app("f", vec![a, b]);
        let f_ab2 = s.app("f", vec![a, b]);
        let f_ba = s.app("f", vec![b, a]);
        let g_ab = s.app("g", vec![a, b]);
        assert_eq!(f_ab1, f_ab2);
        assert_ne!(f_ab1, f_ba, "argument order matters for functions");
        assert_ne!(f_ab1, g_ab);
    }

    #[test]
    fn sets_canonicalize_order_and_duplicates() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        let b = s.atom("b");
        let c = s.atom("c");
        let s1 = s.set(vec![c, a, b]);
        let s2 = s.set(vec![a, b, c, b, a]);
        assert_eq!(s1, s2);
        assert_eq!(s.card(s1), Some(3));
    }

    #[test]
    fn empty_set_is_unique_and_cached() {
        let mut s = TermStore::new();
        let e1 = s.empty_set();
        let e2 = s.set(vec![]);
        assert_eq!(e1, e2);
        assert_eq!(s.card(e1), Some(0));
    }

    #[test]
    fn singleton_set_differs_from_element() {
        // {a} ≠ a: sort s vs sort a (the paper's two-sorted logic).
        let mut s = TermStore::new();
        let a = s.atom("a");
        let sa = s.set(vec![a]);
        assert_ne!(a, sa);
        assert!(s.is_atomic(a));
        assert!(s.is_set(sa));
    }

    #[test]
    fn nested_sets_intern_extensionally() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        let b = s.atom("b");
        let inner1 = s.set(vec![a, b]);
        let inner2 = s.set(vec![b, a]);
        let outer1 = s.set(vec![inner1]);
        let outer2 = s.set(vec![inner2]);
        assert_eq!(outer1, outer2, "{{a,b}} == {{b,a}} extensionally");
        assert_eq!(s.depth(outer1), 2);
    }

    #[test]
    fn depth_reflects_nesting() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        assert_eq!(s.depth(a), 0);
        let s1 = s.set(vec![a]);
        assert_eq!(s.depth(s1), 1);
        let s2 = s.set(vec![s1, a]);
        assert_eq!(s.depth(s2), 2);
        let e = s.empty_set();
        assert_eq!(s.depth(e), 1);
    }

    #[test]
    fn inverted_index_tracks_membership() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        let b = s.atom("b");
        let s1 = s.set(vec![a]);
        let s2 = s.set(vec![a, b]);
        assert_eq!(s.sets_containing(a), &[s1, s2]);
        assert_eq!(s.sets_containing(b), &[s2]);
        // Re-interning an existing set must not duplicate index entries.
        let s1_again = s.set(vec![a]);
        assert_eq!(s1_again, s1);
        assert_eq!(s.sets_containing(a), &[s1, s2]);
    }

    #[test]
    fn set_ids_track_interned_sets_without_duplicates() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        assert!(s.set_ids().is_empty());
        let s1 = s.set(vec![a]);
        let e = s.empty_set();
        let s1_again = s.set(vec![a]);
        assert_eq!(s1_again, s1);
        assert_eq!(s.set_ids(), &[s1, e]);
    }

    #[test]
    fn find_is_read_only_and_agrees_with_intern() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        let i = s.int(42);
        let b = s.atom("b");
        let ab = s.set(vec![a, b]);
        let before = s.len();
        assert_eq!(s.find_atom("a"), Some(a));
        assert_eq!(s.find_atom("zzz"), None);
        assert_eq!(s.find_int(42), Some(i));
        assert_eq!(s.find_int(43), None);
        // Non-canonical element order still finds the interned set.
        assert_eq!(s.find_set(vec![b, a, b]), Some(ab));
        assert_eq!(s.find_set(vec![a]), None);
        assert_eq!(s.len(), before, "find must not intern");
    }

    #[test]
    fn stats_count_shapes() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        let i = s.int(3);
        s.app("f", vec![a, i]);
        s.set(vec![a, i]);
        let st = s.stats();
        assert_eq!(st.terms, 4);
        assert_eq!(st.atoms, 1);
        assert_eq!(st.ints, 1);
        assert_eq!(st.apps, 1);
        assert_eq!(st.sets, 1);
        assert_eq!(st.set_elements, 2);
    }

    #[test]
    fn functions_may_take_set_arguments_in_elps() {
        // ELPS (§5) is untyped; only the *range* of function symbols is
        // restricted to atoms. f({a}) is a legal atom-sorted term.
        let mut s = TermStore::new();
        let a = s.atom("a");
        let sa = s.set(vec![a]);
        let fa = s.app("f", vec![sa]);
        assert!(s.is_atomic(fa));
        assert_eq!(s.depth(fa), 1);
    }
}
