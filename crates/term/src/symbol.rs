//! String interning for constant, function, predicate, and variable
//! names.
//!
//! Every name that appears in a program is interned once in a
//! [`SymbolTable`] and referred to by a 4-byte [`Symbol`] thereafter.
//! Interning makes name equality O(1) and keeps the hot tuple
//! representation (`TermId`s, which embed `Symbol`s transitively) free
//! of string data.

use crate::FxHashMap;

/// An interned string. Equality and hashing are O(1); the textual form
/// is recovered through the [`SymbolTable`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol within its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a symbol from a raw index previously obtained from
    /// [`Symbol::index`]. The caller must ensure the index came from the
    /// same table.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("symbol table overflow"))
    }
}

/// An append-only string interner.
///
/// Names are stored exactly once; lookups are hash-based. The table is
/// append-only, so `Symbol`s are never invalidated.
#[derive(Default, Debug, Clone)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    index: FxHashMap<Box<str>, Symbol>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol::from_index(self.names.len());
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.index.insert(boxed, sym);
        sym
    }

    /// Look up a name without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// The textual form of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different table.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Generate a symbol guaranteed not to collide with any name that
    /// can be written in the surface syntax (used by the Theorem-6
    /// compiler for auxiliary predicates). The `$` prefix is reserved:
    /// the lexer rejects it in user programs.
    pub fn fresh(&mut self, stem: &str) -> Symbol {
        let mut n = self.names.len();
        loop {
            let candidate = format!("${stem}#{n}");
            if self.get(&candidate).is_none() {
                return self.intern(&candidate);
            }
            n += 1;
        }
    }

    /// Iterate over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::from_index(i), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a1 = t.intern("alpha");
        let a2 = t.intern("alpha");
        assert_eq!(a1, a2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a1), "alpha");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.name(b), "b");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.len(), 0);
        let s = t.intern("present");
        assert_eq!(t.get("present"), Some(s));
    }

    #[test]
    fn fresh_symbols_never_collide() {
        let mut t = SymbolTable::new();
        let f1 = t.fresh("aux");
        let f2 = t.fresh("aux");
        assert_ne!(f1, f2);
        assert!(t.name(f1).starts_with("$aux"));
    }

    #[test]
    fn fresh_skips_manually_interned_collisions() {
        let mut t = SymbolTable::new();
        // Simulate a collision with the generated scheme.
        t.intern("$aux#0");
        let f = t.fresh("aux");
        assert_ne!(t.name(f), "$aux#0");
    }

    #[test]
    fn iter_yields_in_order() {
        let mut t = SymbolTable::new();
        t.intern("x");
        t.intern("y");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
