//! A small, fast, non-cryptographic hasher (the Fx algorithm used by
//! rustc), implemented locally because the vendored-crate allowlist does
//! not include `rustc-hash`.
//!
//! The algorithm multiplies by a large odd constant and rotates; it is
//! excellent for the small integer keys (`TermId`, `Symbol`, predicate
//! ids, tuple keys) that dominate this workspace, and is *not* HashDoS
//! resistant — fine for an in-process engine that never hashes
//! attacker-controlled data.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// One folding step of the Fx hash: mix `word` into the running
/// `hash`. Exposed so callers that hash short id sequences *in place*
/// (the engine's arena relation storage hashes tuple columns without
/// materializing a key) can fold words directly instead of driving a
/// [`Hasher`] object. `fx_fold(…fx_fold(fx_fold(0, w₀), w₁)…, wₙ)` is
/// exactly the hash [`FxHasher`] computes for the same word stream.
#[inline]
#[must_use]
pub const fn fx_fold(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED)
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = fx_fold(self.hash, word);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process full 8-byte words, then the tail. Chunks keep the hot
        // loop branch-free for the common small inputs.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (i * 8);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let h: Vec<u64> = (0u64..64).map(|i| hash_of(&i)).collect();
        let mut sorted = h.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "nearby integers must not collide");
    }

    #[test]
    fn distinguishes_byte_tails() {
        // Tail handling (non-multiple-of-8 lengths) must feed every byte.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&[0u8; 9]), hash_of(&[0u8; 10]));
    }

    #[test]
    fn fold_agrees_with_hasher() {
        // Folding words directly must reproduce the Hasher's stream.
        let words = [7u64, 0, u64::MAX, 0x1234_5678_9abc_def0];
        let folded = words.iter().fold(0u64, |h, &w| fx_fold(h, w));
        let mut hasher = FxHasher::default();
        for &w in &words {
            hasher.write_u64(w);
        }
        assert_eq!(folded, hasher.finish());
    }

    #[test]
    fn usable_in_hashmap() {
        let mut m: crate::FxHashMap<u32, &str> = crate::FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }
}
