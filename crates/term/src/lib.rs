//! # `lps-term` — ground-term substrate for LPS/ELPS
//!
//! This crate implements the value model of Kuper's *Logic Programming
//! with Sets* (PODS 1987 / JCSS 1990):
//!
//! * **atoms** — constants, 64-bit integers, and applications of
//!   uninterpreted function symbols `f(t₁, …, tₖ)` (Definition 2 of the
//!   paper; function symbols always produce sort *a*),
//! * **sets** — finite sets of ground terms. In LPS proper (§2) the
//!   elements must be atoms; in ELPS (§5) sets nest arbitrarily. The
//!   store supports full ELPS nesting, and the `lps-core` sort checker
//!   enforces the LPS restriction when requested.
//!
//! All ground terms are **hash-consed** in a [`TermStore`]: each distinct
//! term receives a [`TermId`] and set payloads are stored sorted and
//! deduplicated, so the paper's extensional set equality `=ˢ`
//! (Definition 3) coincides with `TermId` equality and costs O(1).
//!
//! The store also maintains an inverted *element → containing sets*
//! index used by the engine's semi-naive `(∀x ∈ X)` trigger
//! optimization (experiment E9 in `EXPERIMENTS.md`).
//!
//! ```
//! use lps_term::{TermStore, Value};
//!
//! let mut store = TermStore::new();
//! let a = store.atom("a");
//! let b = store.atom("b");
//! // {a, b} and {b, a, b} intern to the same canonical set.
//! let s1 = store.set(vec![a, b]);
//! let s2 = store.set(vec![b, a, b]);
//! assert_eq!(s1, s2);
//! assert_eq!(store.display(s1).to_string(), "{a, b}");
//! assert_eq!(Value::from_store(&store, s1),
//!            Value::set([Value::atom("a"), Value::atom("b")]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fxhash;
pub mod setops;
pub mod store;
pub mod symbol;
pub mod value;

mod display;

pub use display::DisplayTerm;
pub use fxhash::fx_fold;
pub use store::{StoreStats, TermData, TermId, TermStore};
pub use symbol::{Symbol, SymbolTable};
pub use value::{Sort, Value};

/// A convenient alias for hash maps keyed by small integer-like ids.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, fxhash::FxBuildHasher>;
/// A convenient alias for hash sets of small integer-like ids.
pub type FxHashSet<K> = std::collections::HashSet<K, fxhash::FxBuildHasher>;
