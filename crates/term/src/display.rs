//! Display of interned terms with store context.

use std::fmt;

use crate::store::{TermData, TermId, TermStore};

/// Borrowed pretty-printer for an interned term; obtained from
/// [`TermStore::display`].
pub struct DisplayTerm<'a> {
    store: &'a TermStore,
    id: TermId,
}

impl TermStore {
    /// Display adapter for a term id: `store.display(id).to_string()`.
    pub fn display(&self, id: TermId) -> DisplayTerm<'_> {
        DisplayTerm { store: self, id }
    }

    /// Display adapter for a tuple of term ids: `p(a, {b, c})`-style
    /// argument lists.
    pub fn display_tuple<'a>(&'a self, ids: &'a [TermId]) -> DisplayTuple<'a> {
        DisplayTuple { store: self, ids }
    }
}

impl fmt::Display for DisplayTerm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(self.store, self.id, f)
    }
}

/// Borrowed pretty-printer for a tuple of interned terms.
pub struct DisplayTuple<'a> {
    store: &'a TermStore,
    ids: &'a [TermId],
}

impl fmt::Display for DisplayTuple<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, &id) in self.ids.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write_term(self.store, id, f)?;
        }
        f.write_str(")")
    }
}

fn write_term(store: &TermStore, id: TermId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match store.data(id) {
        TermData::Atom(sym) => f.write_str(store.symbols().name(*sym)),
        TermData::Int(v) => write!(f, "{v}"),
        TermData::App(sym, args) => {
            f.write_str(store.symbols().name(*sym))?;
            f.write_str("(")?;
            for (i, &a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_term(store, a, f)?;
            }
            f.write_str(")")
        }
        TermData::Set(elems) => {
            f.write_str("{")?;
            for (i, &e) in elems.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_term(store, e, f)?;
            }
            f.write_str("}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_all_shapes() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        let i = s.int(42);
        let fa = s.app("f", vec![a, i]);
        let set = s.set(vec![a, fa]);
        let empty = s.empty_set();
        assert_eq!(s.display(a).to_string(), "a");
        assert_eq!(s.display(i).to_string(), "42");
        assert_eq!(s.display(fa).to_string(), "f(a, 42)");
        assert_eq!(s.display(set).to_string(), "{a, f(a, 42)}");
        assert_eq!(s.display(empty).to_string(), "{}");
    }

    #[test]
    fn displays_tuples() {
        let mut s = TermStore::new();
        let a = s.atom("a");
        let set = s.set(vec![a]);
        assert_eq!(s.display_tuple(&[a, set]).to_string(), "(a, {a})");
        assert_eq!(s.display_tuple(&[]).to_string(), "()");
    }

    #[test]
    fn nested_sets_display_canonically() {
        let mut s = TermStore::new();
        let b = s.atom("b");
        let a = s.atom("a");
        let inner = s.set(vec![b, a]);
        let outer = s.set(vec![inner]);
        // Canonical order is interning order of TermIds (b before a
        // here), which is stable and deterministic.
        assert_eq!(s.display(outer).to_string(), "{{b, a}}");
    }
}
