//! Owned ground-term trees.
//!
//! [`Value`] is the store-independent representation of a ground term:
//! an ordinary Rust tree with a `BTreeSet` for set nodes. It exists for
//! the API boundary — building expected results in tests, extracting
//! query answers, serializing — while all *evaluation* happens on
//! interned [`TermId`]s. Conversions in both directions are provided.

use std::collections::BTreeSet;
use std::fmt;

use crate::store::{TermData, TermId, TermStore};

/// The two sorts of the LPS logic (§2.1): `a` for individual objects
/// and `s` for sets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sort {
    /// Individual objects: constants, integers, function applications.
    Atom,
    /// Finite sets.
    Set,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Atom => f.write_str("a"),
            Sort::Set => f.write_str("s"),
        }
    }
}

/// An owned ground term (atom, integer, application, or finite set).
///
/// `Ord` is derived structurally, which makes `BTreeSet<Value>` a
/// canonical set representation: equality of `Value::Set`s is exactly
/// the extensional equality `=ˢ` of the paper.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// Named constant.
    Atom(String),
    /// Integer constant.
    Int(i64),
    /// Function application.
    App(String, Vec<Value>),
    /// Finite set (canonical by construction).
    Set(BTreeSet<Value>),
}

impl Value {
    /// Build a named constant.
    pub fn atom(name: impl Into<String>) -> Self {
        Value::Atom(name.into())
    }

    /// Build an integer constant.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Build a function application.
    pub fn app(f: impl Into<String>, args: impl IntoIterator<Item = Value>) -> Self {
        Value::App(f.into(), args.into_iter().collect())
    }

    /// Build a set from any iterator of values (duplicates collapse).
    pub fn set(elems: impl IntoIterator<Item = Value>) -> Self {
        Value::Set(elems.into_iter().collect())
    }

    /// The empty set.
    pub fn empty_set() -> Self {
        Value::Set(BTreeSet::new())
    }

    /// The sort of this term.
    pub fn sort(&self) -> Sort {
        match self {
            Value::Set(_) => Sort::Set,
            _ => Sort::Atom,
        }
    }

    /// Nesting depth: atoms 0, sets 1 + max element depth.
    pub fn depth(&self) -> usize {
        match self {
            Value::Set(elems) => 1 + elems.iter().map(Value::depth).max().unwrap_or_default(),
            Value::App(_, args) => args.iter().map(Value::depth).max().unwrap_or(0),
            _ => 0,
        }
    }

    /// Whether this term is legal in *LPS proper* (§2): sets contain
    /// only atoms (depth ≤ 1) and function arguments are atoms.
    pub fn is_lps(&self) -> bool {
        match self {
            Value::Atom(_) | Value::Int(_) => true,
            Value::App(_, args) => args.iter().all(|a| a.sort() == Sort::Atom && a.is_lps()),
            Value::Set(elems) => elems.iter().all(|e| e.sort() == Sort::Atom && e.is_lps()),
        }
    }

    /// Intern this value into `store`, returning its id.
    pub fn intern(&self, store: &mut TermStore) -> TermId {
        match self {
            Value::Atom(name) => store.atom(name),
            Value::Int(v) => store.int(*v),
            Value::App(f, args) => {
                let ids: Vec<TermId> = args.iter().map(|a| a.intern(store)).collect();
                store.app(f, ids)
            }
            Value::Set(elems) => {
                let ids: Vec<TermId> = elems.iter().map(|e| e.intern(store)).collect();
                store.set(ids)
            }
        }
    }

    /// Reconstruct the owned tree for an interned term.
    pub fn from_store(store: &TermStore, id: TermId) -> Self {
        match store.data(id) {
            TermData::Atom(sym) => Value::Atom(store.symbols().name(*sym).to_owned()),
            TermData::Int(v) => Value::Int(*v),
            TermData::App(f, args) => Value::App(
                store.symbols().name(*f).to_owned(),
                args.iter().map(|&a| Value::from_store(store, a)).collect(),
            ),
            TermData::Set(elems) => {
                Value::Set(elems.iter().map(|&e| Value::from_store(store, e)).collect())
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(name) => f.write_str(name),
            Value::Int(v) => write!(f, "{v}"),
            Value::App(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Value::Set(elems) => {
                f.write_str("{")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Atom(s.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_equality_is_extensional() {
        let s1 = Value::set([Value::atom("a"), Value::atom("b")]);
        let s2 = Value::set([Value::atom("b"), Value::atom("a"), Value::atom("b")]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn sorts() {
        assert_eq!(Value::atom("x").sort(), Sort::Atom);
        assert_eq!(Value::int(1).sort(), Sort::Atom);
        assert_eq!(Value::app("f", [Value::int(1)]).sort(), Sort::Atom);
        assert_eq!(Value::empty_set().sort(), Sort::Set);
    }

    #[test]
    fn lps_legality() {
        let flat = Value::set([Value::atom("a")]);
        assert!(flat.is_lps());
        let nested = Value::set([flat.clone()]);
        assert!(!nested.is_lps(), "depth-2 sets are ELPS-only");
        let f_of_set = Value::app("f", [flat]);
        assert!(!f_of_set.is_lps(), "set-sorted function args are ELPS-only");
    }

    #[test]
    fn roundtrip_through_store() {
        let mut store = TermStore::new();
        let v = Value::set([
            Value::atom("a"),
            Value::int(-3),
            Value::app("f", [Value::atom("b")]),
            Value::set([Value::atom("c")]),
        ]);
        let id = v.intern(&mut store);
        assert_eq!(Value::from_store(&store, id), v);
        // Interning twice yields the same id (hash-consing through the
        // owned-tree path too).
        assert_eq!(v.intern(&mut store), id);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::atom("a").to_string(), "a");
        assert_eq!(Value::int(-7).to_string(), "-7");
        assert_eq!(
            Value::app("f", [Value::atom("a"), Value::int(2)]).to_string(),
            "f(a, 2)"
        );
        assert_eq!(Value::empty_set().to_string(), "{}");
        let s = Value::set([Value::atom("b"), Value::atom("a")]);
        assert_eq!(s.to_string(), "{a, b}", "display uses canonical order");
    }

    #[test]
    fn depth_matches_store_depth() {
        let mut store = TermStore::new();
        let v = Value::set([Value::set([Value::atom("a")]), Value::atom("b")]);
        let id = v.intern(&mut store);
        assert_eq!(v.depth(), store.depth(id));
        assert_eq!(v.depth(), 2);
    }
}
