//! Set algebra over interned sets.
//!
//! These kernels implement the semantics of the paper's built-in and
//! derived set predicates on canonical (sorted, deduplicated) payloads:
//! membership `∈` (Definition 3), `union` and `scons` (Definition 15,
//! used by the Theorem-10/11 equivalences), disjointness (Example 1),
//! subset (Example 2), and disjoint union (Example 5).
//!
//! All binary operations are linear merges over the sorted payloads;
//! equality is `TermId` comparison (O(1)) thanks to hash-consing.

use crate::store::{TermId, TermStore};

/// `elem ∈ set` (Definition 3, the `∈ᵃˢ` predicate generalized to ELPS).
/// Binary-searches the canonical payload.
///
/// # Panics
/// Panics if `set` is not a set term.
pub fn member(store: &TermStore, elem: TermId, set: TermId) -> bool {
    let elems = store.set_elems(set).expect("member: not a set");
    elems.binary_search(&elem).is_ok()
}

/// `x ⊆ y` (Example 2's `subset`). Linear merge over both payloads.
pub fn subset(store: &TermStore, x: TermId, y: TermId) -> bool {
    if x == y {
        return true;
    }
    let xs = store.set_elems(x).expect("subset: not a set");
    let ys = store.set_elems(y).expect("subset: not a set");
    if xs.len() > ys.len() {
        return false;
    }
    let mut yi = ys.iter();
    'outer: for &xe in xs {
        for &ye in yi.by_ref() {
            match ye.cmp(&xe) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// `x` and `y` have no common element (Example 1's `disj`).
pub fn disjoint(store: &TermStore, x: TermId, y: TermId) -> bool {
    let xs = store.set_elems(x).expect("disjoint: not a set");
    let ys = store.set_elems(y).expect("disjoint: not a set");
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// `x ∪ y`, interned (Definition 15.1, the `union` predicate's function
/// form). Linear merge producing a canonical payload directly.
pub fn union(store: &mut TermStore, x: TermId, y: TermId) -> TermId {
    if x == y {
        return x;
    }
    let xs = store.set_elems(x).expect("union: not a set").to_vec();
    let ys = store.set_elems(y).expect("union: not a set").to_vec();
    let mut out = Vec::with_capacity(xs.len() + ys.len());
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => {
                out.push(xs[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(ys[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&xs[i..]);
    out.extend_from_slice(&ys[j..]);
    store.set_canonical(out)
}

/// `x ∩ y`, interned.
pub fn intersect(store: &mut TermStore, x: TermId, y: TermId) -> TermId {
    if x == y {
        return x;
    }
    let xs = store.set_elems(x).expect("intersect: not a set").to_vec();
    let ys = store.set_elems(y).expect("intersect: not a set").to_vec();
    let mut out = Vec::with_capacity(xs.len().min(ys.len()));
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
        }
    }
    store.set_canonical(out)
}

/// `x ∖ y`, interned.
pub fn difference(store: &mut TermStore, x: TermId, y: TermId) -> TermId {
    let xs = store.set_elems(x).expect("difference: not a set").to_vec();
    let ys = store.set_elems(y).expect("difference: not a set").to_vec();
    let mut out = Vec::with_capacity(xs.len());
    let (mut i, mut j) = (0, 0);
    while i < xs.len() {
        if j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                std::cmp::Ordering::Less => {
                    out.push(xs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        } else {
            out.push(xs[i]);
            i += 1;
        }
    }
    store.set_canonical(out)
}

/// `scons(x, y) = {x} ∪ y` (Definition 15.2 — LDL's set constructor,
/// rendered as a function). Inserts `x` into the canonical payload.
pub fn scons(store: &mut TermStore, x: TermId, y: TermId) -> TermId {
    let ys = store.set_elems(y).expect("scons: not a set");
    match ys.binary_search(&x) {
        Ok(_) => y,
        Err(pos) => {
            let mut out = Vec::with_capacity(ys.len() + 1);
            out.extend_from_slice(&ys[..pos]);
            out.push(x);
            out.extend_from_slice(&ys[pos..]);
            store.set_canonical(out)
        }
    }
}

/// All decompositions `z = {x} ∪ y` with `x ∉ y` — the inverse mode of
/// `scons` used when translating ELPS clauses to Horn + `scons`
/// (Theorem 10 proof, step 4). Yields `|z|` pairs `(x, z ∖ {x})`.
pub fn scons_decompositions(store: &mut TermStore, z: TermId) -> Vec<(TermId, TermId)> {
    let elems = store
        .set_elems(z)
        .expect("scons_decompositions: not a set")
        .to_vec();
    let mut out = Vec::with_capacity(elems.len());
    for (i, &x) in elems.iter().enumerate() {
        let mut rest = Vec::with_capacity(elems.len() - 1);
        rest.extend_from_slice(&elems[..i]);
        rest.extend_from_slice(&elems[i + 1..]);
        let y = store.set_canonical(rest);
        out.push((x, y));
    }
    out
}

/// The canonical decomposition `z = {min z} ∪ rest` — the engineering
/// extension `scons_min` (DESIGN.md §4.4). Returns `None` for `∅`.
pub fn scons_min_decomposition(store: &mut TermStore, z: TermId) -> Option<(TermId, TermId)> {
    let elems = store.set_elems(z).expect("scons_min: not a set");
    let (&first, rest) = elems.split_first()?;
    let rest = rest.to_vec();
    let y = store.set_canonical(rest);
    Some((first, y))
}

/// All ordered pairs `(x, y)` with `x ∪ y = z` and `x ∩ y = ∅` — the
/// inverse mode of Example 5's `disj-union`, which drives the paper's
/// recursive `sum` formulation. There are `2^|z|` such pairs; callers
/// bound `|z|`.
pub fn disjoint_union_decompositions(store: &mut TermStore, z: TermId) -> Vec<(TermId, TermId)> {
    let elems = store
        .set_elems(z)
        .expect("disjoint_union_decompositions: not a set")
        .to_vec();
    let n = elems.len();
    assert!(n < usize::BITS as usize, "set too large to partition");
    let mut out = Vec::with_capacity(1usize << n);
    for mask in 0..(1usize << n) {
        let mut left = Vec::with_capacity(mask.count_ones() as usize);
        let mut right = Vec::with_capacity(n - mask.count_ones() as usize);
        for (i, &e) in elems.iter().enumerate() {
            if mask & (1 << i) != 0 {
                left.push(e);
            } else {
                right.push(e);
            }
        }
        let l = store.set_canonical(left);
        let r = store.set_canonical(right);
        out.push((l, r));
    }
    out
}

/// Enumerate (and intern) every subset of `base`'s elements with
/// cardinality at most `max_card`. This materializes a bounded fragment
/// of the Herbrand sort-`s` universe `Uˢ = P^fin(Uᵃ)` (Definition 7) —
/// needed by the Theorem-8 demonstration and by translated Horn+`union`
/// programs, both of which quantify over *all* sets.
pub fn subsets_up_to(store: &mut TermStore, base: &[TermId], max_card: usize) -> Vec<TermId> {
    let mut elems = base.to_vec();
    elems.sort_unstable();
    elems.dedup();
    let n = elems.len();
    assert!(n < usize::BITS as usize, "base too large to enumerate");
    let mut out = Vec::new();
    for mask in 0..(1usize << n) {
        if (mask.count_ones() as usize) > max_card {
            continue;
        }
        let subset: Vec<TermId> = elems
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        out.push(store.set_canonical(subset));
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc(store: &mut TermStore) -> (TermId, TermId, TermId) {
        (store.atom("a"), store.atom("b"), store.atom("c"))
    }

    #[test]
    fn member_checks_presence() {
        let mut s = TermStore::new();
        let (a, b, c) = abc(&mut s);
        let set = s.set(vec![a, c]);
        assert!(member(&s, a, set));
        assert!(!member(&s, b, set));
        assert!(member(&s, c, set));
    }

    #[test]
    fn subset_relation() {
        let mut s = TermStore::new();
        let (a, b, c) = abc(&mut s);
        let empty = s.empty_set();
        let ab = s.set(vec![a, b]);
        let abc_ = s.set(vec![a, b, c]);
        let bc = s.set(vec![b, c]);
        assert!(subset(&s, empty, ab));
        assert!(subset(&s, ab, abc_));
        assert!(subset(&s, ab, ab));
        assert!(!subset(&s, abc_, ab));
        assert!(!subset(&s, ab, bc));
    }

    #[test]
    fn disjointness() {
        let mut s = TermStore::new();
        let (a, b, c) = abc(&mut s);
        let ab = s.set(vec![a, b]);
        let c_ = s.set(vec![c]);
        let bc = s.set(vec![b, c]);
        let empty = s.empty_set();
        assert!(disjoint(&s, ab, c_));
        assert!(!disjoint(&s, ab, bc));
        assert!(disjoint(&s, empty, ab), "∅ is disjoint from everything");
        assert!(disjoint(&s, empty, empty));
    }

    #[test]
    fn union_merges_canonically() {
        let mut s = TermStore::new();
        let (a, b, c) = abc(&mut s);
        let ab = s.set(vec![a, b]);
        let bc = s.set(vec![b, c]);
        let expected = s.set(vec![a, b, c]);
        assert_eq!(union(&mut s, ab, bc), expected);
        assert_eq!(union(&mut s, bc, ab), expected, "commutative");
        assert_eq!(union(&mut s, ab, ab), ab, "idempotent");
        let empty = s.empty_set();
        assert_eq!(union(&mut s, empty, ab), ab, "∅ is the identity");
    }

    #[test]
    fn intersect_and_difference() {
        let mut s = TermStore::new();
        let (a, b, c) = abc(&mut s);
        let ab = s.set(vec![a, b]);
        let bc = s.set(vec![b, c]);
        let just_b = s.set(vec![b]);
        let just_a = s.set(vec![a]);
        assert_eq!(intersect(&mut s, ab, bc), just_b);
        assert_eq!(difference(&mut s, ab, bc), just_a);
        let empty = s.empty_set();
        assert_eq!(difference(&mut s, ab, ab), empty);
    }

    #[test]
    fn scons_inserts() {
        let mut s = TermStore::new();
        let (a, b, c) = abc(&mut s);
        let bc = s.set(vec![b, c]);
        let abc_ = s.set(vec![a, b, c]);
        assert_eq!(scons(&mut s, a, bc), abc_);
        assert_eq!(scons(&mut s, b, bc), bc, "inserting a member is a no-op");
        let empty = s.empty_set();
        let just_a = s.set(vec![a]);
        assert_eq!(scons(&mut s, a, empty), just_a);
    }

    #[test]
    fn scons_decompositions_cover_all_elements() {
        let mut s = TermStore::new();
        let (a, b, c) = abc(&mut s);
        let abc_ = s.set(vec![a, b, c]);
        let decs = scons_decompositions(&mut s, abc_);
        assert_eq!(decs.len(), 3);
        for &(x, y) in &decs {
            assert!(!member(&s, x, y), "x ∉ rest");
            assert_eq!(scons(&mut s, x, y), abc_, "recomposition");
        }
        let empty = s.empty_set();
        assert!(scons_decompositions(&mut s, empty).is_empty());
    }

    #[test]
    fn scons_min_is_canonical() {
        let mut s = TermStore::new();
        let (a, b, c) = abc(&mut s);
        let abc_ = s.set(vec![c, b, a]);
        let (x, y) = scons_min_decomposition(&mut s, abc_).unwrap();
        // The minimum TermId is `a` (interned first).
        assert_eq!(x, a);
        let bc = s.set(vec![b, c]);
        assert_eq!(y, bc);
        let empty = s.empty_set();
        assert_eq!(scons_min_decomposition(&mut s, empty), None);
    }

    #[test]
    fn disjoint_union_decompositions_enumerate_partitions() {
        let mut s = TermStore::new();
        let (a, b, _) = abc(&mut s);
        let ab = s.set(vec![a, b]);
        let decs = disjoint_union_decompositions(&mut s, ab);
        assert_eq!(decs.len(), 4, "2^2 ordered partitions");
        for &(x, y) in &decs {
            assert!(disjoint(&s, x, y));
            assert_eq!(union(&mut s, x, y), ab);
        }
    }

    #[test]
    fn subsets_up_to_bounds_cardinality() {
        let mut s = TermStore::new();
        let (a, b, c) = abc(&mut s);
        let all = subsets_up_to(&mut s, &[a, b, c], 3);
        assert_eq!(all.len(), 8);
        let small = subsets_up_to(&mut s, &[a, b, c], 1);
        assert_eq!(small.len(), 4, "∅ and three singletons");
        for &sub in &small {
            assert!(s.card(sub).unwrap() <= 1);
        }
    }

    #[test]
    fn subsets_deduplicate_base() {
        let mut s = TermStore::new();
        let (a, _, _) = abc(&mut s);
        let subs = subsets_up_to(&mut s, &[a, a, a], 5);
        assert_eq!(subs.len(), 2, "empty set and the singleton");
    }
}
