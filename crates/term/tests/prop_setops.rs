//! Property-based tests for the canonical set representation and the
//! set-algebra kernels: the algebraic laws that make the hash-consed
//! representation a model of the paper's `=ˢ` / `∈` semantics.

use proptest::prelude::*;

use lps_term::setops::{
    difference, disjoint, disjoint_union_decompositions, intersect, member, scons,
    scons_decompositions, scons_min_decomposition, subset, subsets_up_to, union,
};
use lps_term::{TermId, TermStore, Value};

/// Strategy: a small universe of atoms identified by index 0..8.
fn atom_indices() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..8, 0..10)
}

/// Intern a set of indexed atoms.
fn set_of(store: &mut TermStore, idxs: &[u8]) -> TermId {
    let elems: Vec<TermId> = idxs.iter().map(|i| store.atom(&format!("a{i}"))).collect();
    store.set(elems)
}

proptest! {
    /// Interning is order- and duplicate-insensitive: any two
    /// permutations-with-repeats of the same element multiset intern to
    /// the same id (extensional equality `=ˢ`).
    #[test]
    fn interning_is_extensional(mut idxs in atom_indices(), seed in any::<u64>()) {
        let mut store = TermStore::new();
        let s1 = set_of(&mut store, &idxs);
        // Pseudo-shuffle deterministically from the seed.
        let n = idxs.len();
        if n > 1 {
            let mut s = seed;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                idxs.swap(i, (s % (i as u64 + 1)) as usize);
            }
        }
        // Also duplicate a prefix.
        let dup: Vec<u8> = idxs.iter().chain(idxs.iter().take(n / 2)).copied().collect();
        let s2 = set_of(&mut store, &dup);
        prop_assert_eq!(s1, s2);
    }

    /// Union laws: commutative, associative, idempotent, identity ∅.
    #[test]
    fn union_laws(a in atom_indices(), b in atom_indices(), c in atom_indices()) {
        let mut st = TermStore::new();
        let x = set_of(&mut st, &a);
        let y = set_of(&mut st, &b);
        let z = set_of(&mut st, &c);
        let e = st.empty_set();
        prop_assert_eq!(union(&mut st, x, y), union(&mut st, y, x));
        let xy = union(&mut st, x, y);
        let yz = union(&mut st, y, z);
        prop_assert_eq!(union(&mut st, xy, z), union(&mut st, x, yz));
        prop_assert_eq!(union(&mut st, x, x), x);
        prop_assert_eq!(union(&mut st, x, e), x);
    }

    /// Absorption and distributivity connecting ∪ and ∩.
    #[test]
    fn lattice_laws(a in atom_indices(), b in atom_indices(), c in atom_indices()) {
        let mut st = TermStore::new();
        let x = set_of(&mut st, &a);
        let y = set_of(&mut st, &b);
        let z = set_of(&mut st, &c);
        // x ∪ (x ∩ y) = x
        let xy = intersect(&mut st, x, y);
        prop_assert_eq!(union(&mut st, x, xy), x);
        // x ∩ (y ∪ z) = (x ∩ y) ∪ (x ∩ z)
        let yz = union(&mut st, y, z);
        let lhs = intersect(&mut st, x, yz);
        let xy2 = intersect(&mut st, x, y);
        let xz = intersect(&mut st, x, z);
        let rhs = union(&mut st, xy2, xz);
        prop_assert_eq!(lhs, rhs);
    }

    /// Difference: (x ∖ y) ∩ y = ∅ and (x ∖ y) ∪ (x ∩ y) = x.
    #[test]
    fn difference_partitions(a in atom_indices(), b in atom_indices()) {
        let mut st = TermStore::new();
        let x = set_of(&mut st, &a);
        let y = set_of(&mut st, &b);
        let e = st.empty_set();
        let d = difference(&mut st, x, y);
        prop_assert_eq!(intersect(&mut st, d, y), e);
        let i = intersect(&mut st, x, y);
        prop_assert_eq!(union(&mut st, d, i), x);
        prop_assert!(disjoint(&st, d, y));
    }

    /// subset(x, y) ⇔ x ∪ y = y ⇔ every member of x is a member of y.
    #[test]
    fn subset_characterizations(a in atom_indices(), b in atom_indices()) {
        let mut st = TermStore::new();
        let x = set_of(&mut st, &a);
        let y = set_of(&mut st, &b);
        let via_union = union(&mut st, x, y) == y;
        let via_member = st.set_elems(x).unwrap().to_vec().iter()
            .all(|&e| member(&st, e, y));
        prop_assert_eq!(subset(&st, x, y), via_union);
        prop_assert_eq!(subset(&st, x, y), via_member);
    }

    /// scons(x, y) adds exactly x, and decompositions invert it.
    #[test]
    fn scons_roundtrip(a in atom_indices(), pick in 0u8..8) {
        let mut st = TermStore::new();
        let y = set_of(&mut st, &a);
        let x = st.atom(&format!("a{pick}"));
        let z = scons(&mut st, x, y);
        prop_assert!(member(&st, x, z));
        prop_assert!(subset(&st, y, z));
        let decs = scons_decompositions(&mut st, z);
        prop_assert_eq!(decs.len(), st.card(z).unwrap());
        for (e, rest) in decs {
            prop_assert!(!member(&st, e, rest));
            prop_assert_eq!(scons(&mut st, e, rest), z);
        }
    }

    /// scons_min is one of the scons decompositions and is canonical
    /// (the same set always decomposes the same way).
    #[test]
    fn scons_min_is_deterministic(a in atom_indices()) {
        let mut st = TermStore::new();
        let z = set_of(&mut st, &a);
        match scons_min_decomposition(&mut st, z) {
            None => prop_assert_eq!(st.card(z), Some(0)),
            Some((x, rest)) => {
                prop_assert!(member(&st, x, z));
                prop_assert_eq!(scons(&mut st, x, rest), z);
                let again = scons_min_decomposition(&mut st, z).unwrap();
                prop_assert_eq!(again, (x, rest));
            }
        }
    }

    /// disjoint-union decompositions are exactly the 2^|z| ordered
    /// partitions, each disjoint and recomposing to z (Example 5's
    /// `disj-union` inverse mode).
    #[test]
    fn disjoint_union_partitions(a in proptest::collection::vec(0u8..6, 0..6)) {
        let mut st = TermStore::new();
        let z = set_of(&mut st, &a);
        let n = st.card(z).unwrap();
        let decs = disjoint_union_decompositions(&mut st, z);
        prop_assert_eq!(decs.len(), 1usize << n);
        let mut seen = std::collections::HashSet::new();
        for (l, r) in decs {
            prop_assert!(disjoint(&st, l, r));
            prop_assert_eq!(union(&mut st, l, r), z);
            prop_assert!(seen.insert((l, r)), "partitions must be distinct");
        }
    }

    /// subsets_up_to(base, n) with n = |base| enumerates the full
    /// powerset; every returned set is a subset of base.
    #[test]
    fn powerset_enumeration(a in proptest::collection::vec(0u8..6, 0..6)) {
        let mut st = TermStore::new();
        let base_set = set_of(&mut st, &a);
        let elems = st.set_elems(base_set).unwrap().to_vec();
        let n = elems.len();
        let subs = subsets_up_to(&mut st, &elems, n);
        prop_assert_eq!(subs.len(), 1usize << n);
        for &sub in &subs {
            prop_assert!(subset(&st, sub, base_set));
        }
    }

    /// Value ⇄ store roundtrips preserve structure for arbitrary nested
    /// values (ELPS terms).
    #[test]
    fn value_roundtrip(v in value_strategy(3)) {
        let mut st = TermStore::new();
        let id = v.intern(&mut st);
        prop_assert_eq!(Value::from_store(&st, id), v);
    }
}

/// Strategy for arbitrary ELPS values with bounded depth.
fn value_strategy(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        "[a-d]{1,3}".prop_map(Value::atom),
        (-100i64..100).prop_map(Value::int),
    ];
    leaf.prop_recursive(depth, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::set),
            ("[f-h]", proptest::collection::vec(inner, 1..3))
                .prop_map(|(f, args)| Value::app(f, args)),
        ]
    })
}
