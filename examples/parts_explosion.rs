//! Bill-of-materials cost roll-up — the paper's Examples 5 and 6.
//!
//! `parts(x, Y)` is a non-1NF relation: object `x` is built from the
//! set of component parts `Y`; `cost(p, n)` prices the primitives. The
//! paper computes object cost with a recursive `sum` over *disjoint
//! unions* (Example 5). We run that formulation literally, and then
//! the linear-time variant using the canonical decomposition builtin
//! `scons_min` (an engineering extension benchmarked in E6).
//!
//! Run with `cargo run --example parts_explosion`.

use lps::{Database, Dialect, Value};

/// The paper's Example 5/6 formulation: sum by recursive disjoint
/// partitioning. `sum_costs(Z, k)` where Z ranges over subsets reached
/// by splitting — exponential in |Z| but exactly Example 5.
const PAPER_RULES: &str = "
    % sum_costs({p}, n) :- cost(p, n).          (base case)
    sum_costs(S, N) :- part_subset(S), S = {P}, cost(P, N).
    sum_costs(S, 0) :- part_subset(S), S = {}.

    % sum_costs(Z, k) :- disj_union(X, Y, Z), sums, m + n = k.
    sum_costs(Z, K) :- part_subset(Z), disj_union(X, Y, Z),
                       X != {}, Y != {},
                       sum_costs(X, M), sum_costs(Y, N), M + N = K.

    % The subsets the recursion actually visits.
    part_subset(Y) :- parts(_X, Y).
    part_subset(X) :- part_subset(Z), disj_union(X, _Y, Z).

    obj_cost(X, N) :- parts(X, Y), sum_costs(Y, N).
";

/// Linear formulation with the canonical decomposition: each set is
/// peeled at its minimum element exactly once.
const FAST_RULES: &str = "
    sum_costs(S, 0) :- chain(S), S = {}.
    sum_costs(S, K) :- chain(S), scons_min(P, Rest, S),
                       cost(P, N), sum_costs(Rest, M), N + M = K.

    chain(Y) :- parts(_X, Y).
    chain(Rest) :- chain(S), scons_min(_P, Rest, S).

    obj_cost(X, N) :- parts(X, Y), sum_costs(Y, N).
";

fn edb() -> String {
    "
    parts(bike, {frame, wheel_f, wheel_r, chain_drive}).
    parts(cart, {frame, wheel_f, wheel_r}).
    parts(sled, {frame}).
    cost(frame, 120).
    cost(wheel_f, 45).
    cost(wheel_r, 45).
    cost(chain_drive, 30).
    "
    .to_owned()
}

fn run(rules: &str, label: &str) {
    let mut db = Database::new(Dialect::Elps);
    db.load_str(&edb()).unwrap();
    db.load_str(rules).unwrap();
    let start = std::time::Instant::now();
    let model = db.evaluate().expect("cost roll-up evaluates");
    let elapsed = start.elapsed();
    println!("== {label} ==");
    for row in model.extension("obj_cost") {
        println!("  obj_cost({}, {})", row[0], row[1]);
    }
    let stats = model.stats();
    println!(
        "  {} facts, {} rounds, {:?}\n",
        stats.facts_derived, stats.iterations, elapsed
    );
}

fn main() {
    run(PAPER_RULES, "Example 5/6: disjoint-union recursion (paper)");
    run(FAST_RULES, "scons_min chain (linear extension)");

    // Both formulations agree.
    let expected = [("bike", 240i64), ("cart", 210), ("sled", 120)];
    for rules in [PAPER_RULES, FAST_RULES] {
        let mut db = Database::new(Dialect::Elps);
        db.load_str(&edb()).unwrap();
        db.load_str(rules).unwrap();
        let mut model = db.evaluate().unwrap();
        for (obj, cost) in expected {
            assert!(
                model.holds("obj_cost", &[Value::atom(obj), Value::int(cost)]),
                "{obj} should cost {cost}"
            );
        }
    }
    println!("both formulations agree on all object costs ✓");
}
