//! Nested (non-1NF) relations: unnest and nest — the database
//! motivation from the paper's introduction (and its citations to
//! Jaeschke–Schek and the nested relational model).
//!
//! A registrar database stores each student's course set as one
//! set-valued attribute. We unnest it (Example 4), query it, and
//! re-nest a join result with an LDL grouping head (Definition 14).
//!
//! Run with `cargo run --example nested_relations`.

use lps::{Database, Dialect, EvalConfig, Value};

fn main() {
    let mut db = Database::with_config(Dialect::StratifiedElps, EvalConfig::default());
    db.load_str(
        "
        % enrolled(student, {courses}) — a nested relation.
        enrolled(ada,    {logic, databases, compilers}).
        enrolled(boole,  {logic, algebra}).
        enrolled(codd,   {databases}).
        enrolled(dana,   {}).

        % meets(course, day).
        meets(logic, monday).
        meets(databases, tuesday).
        meets(compilers, monday).
        meets(algebra, friday).

        % Example 4: unnest into a flat relation.
        takes(S, C) :- enrolled(S, Cs), C in Cs.

        % Flat queries on the unnested view.
        busy_on(S, D) :- takes(S, C), meets(C, D).

        % classmates: share at least one course (note the existential).
        classmates(S1, S2) :- enrolled(S1, C1), enrolled(S2, C2), S1 != S2,
                              exists C in C1: C in C2.

        % Re-nest: schedule(student, {days}) via LDL grouping.
        schedule(S, <D>) :- busy_on(S, D).

        % Set-level filters on the nested relation directly.
        full_monday(S) :- enrolled(S, Cs), card(Cs, N), N >= 2,
                          forall C in Cs: meets(C, monday).
        light_load(S) :- enrolled(S, Cs), card(Cs, N), N <= 1.
        ",
    )
    .expect("loads");

    let mut model = db.evaluate().expect("evaluates");

    println!("== takes = unnest(enrolled) ==");
    for row in model.extension("takes") {
        println!("  takes({}, {})", row[0], row[1]);
    }

    println!("== schedule = nest(busy_on) ==");
    for row in model.extension("schedule") {
        println!("  schedule({}, {})", row[0], row[1]);
    }

    println!("== classmates ==");
    for row in model.extension("classmates") {
        println!("  classmates({}, {})", row[0], row[1]);
    }

    println!("== light_load ==");
    for row in model.extension("light_load") {
        println!("  light_load({})", row[0]);
    }

    // Spot checks.
    assert!(model.holds("classmates", &[Value::atom("ada"), Value::atom("boole")]));
    assert!(!model.holds("classmates", &[Value::atom("boole"), Value::atom("codd")]));
    let mondays = Value::set([Value::atom("monday"), Value::atom("tuesday")]);
    assert!(model.holds("schedule", &[Value::atom("ada"), mondays]));
    assert!(model.holds("light_load", &[Value::atom("dana")]));
    assert!(model.holds("light_load", &[Value::atom("codd")]));
    println!("\nall spot checks passed ✓");
}
