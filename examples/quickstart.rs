//! Quickstart: the paper's introductory examples (Examples 1–4),
//! straight from the surface syntax.
//!
//! Run with `cargo run --example quickstart`.

use lps::{Database, Dialect, Value};

fn main() {
    let mut db = Database::new(Dialect::Lps);
    db.load_str(
        "
        % A small EDB of set pairs to test relations on.
        pair({a, b}, {c}).
        pair({a, b}, {b, c}).
        pair({a}, {a, b}).
        pair({}, {a, b}).

        % Example 1: disj(X, Y) :- (∀x∈X)(∀y∈Y) x ≠ y.
        disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.

        % Example 2: subset via the membership primitive.
        subset(X, Y) :- pair(X, Y), forall U in X: U in Y.

        % Example 3: union needs disjunction in the body — the
        % Theorem-6 compiler turns this into pure LPS automatically.
        triple({a}, {b}, {a, b}).
        triple({a}, {b}, {a, b, c}).
        union3(X, Y, Z) :- triple(X, Y, Z),
            (forall U in X: U in Z),
            (forall V in Y: V in Z),
            (forall W in Z: (W in X ; W in Y)).

        % Example 4: unnesting a non-1NF relation.
        r(x1, {p, q}).
        r(x2, {q}).
        s(X, Y) :- r(X, Ys), Y in Ys.
        ",
    )
    .expect("program parses and validates");

    let mut model = db.evaluate().expect("evaluates to the least model");

    println!("== disj (Example 1) ==");
    for row in model.extension("disj") {
        println!("  disj({}, {})", row[0], row[1]);
    }

    println!("== subset (Example 2) ==");
    for row in model.extension("subset") {
        println!("  subset({}, {})", row[0], row[1]);
    }

    println!("== union3 (Example 3, via Theorem 6) ==");
    for row in model.extension("union3") {
        println!("  union3({}, {}, {})", row[0], row[1], row[2]);
    }

    println!("== s = unnest(r) (Example 4) ==");
    for row in model.extension("s") {
        println!("  s({}, {})", row[0], row[1]);
    }

    // Point queries with owned values.
    let ab = Value::set([Value::atom("a"), Value::atom("b")]);
    let c = Value::set([Value::atom("c")]);
    assert!(model.holds("disj", &[ab.clone(), c]));
    let stats = model.stats();
    println!(
        "\nderived {} facts in {} fixpoint rounds across {} strata",
        stats.facts_derived, stats.iterations, stats.strata
    );
}
