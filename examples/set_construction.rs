//! Set construction: Theorem 8's impossibility, §4.2's stratified
//! workaround, and LDL grouping — side by side.
//!
//! The task: compute `B(X)` ⇔ `X = {x │ a(x)}`.
//!
//! * A negation-free attempt `B(X) :- (∀x∈X) a(x)` *must* also accept
//!   every subset (Theorem 8: LPS has minimal-model semantics and is
//!   monotone, so the maximal set cannot be isolated).
//! * With stratified negation the paper's §4.2 construction nails it.
//! * LDL grouping (Definition 14) computes the same set directly — and
//!   in linear time, which is experiment E5's comparison.
//!
//! Run with `cargo run --example set_construction`.

use lps::prelude::*;

fn main() {
    // --- The failing, negation-free attempt (Theorem 8). -------------
    let mut naive = Database::with_config(
        Dialect::Lps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 3 },
            ..EvalConfig::default()
        },
    );
    naive
        .load_str(
            "a(c1). a(c2). noise(c3).
             b(X) :- forall U in X: a(U).",
        )
        .unwrap();
    let model = naive.evaluate().unwrap();
    println!("== b(X) :- (∀u∈X) a(u)  — Theorem 8's failing candidate ==");
    for row in model.extension("b") {
        println!("  b({})", row[0]);
    }
    let rows = model.extension("b");
    assert_eq!(rows.len(), 4, "∅, {{c1}}, {{c2}}, {{c1,c2}} all satisfy it");

    // --- §4.2: stratified negation isolates the maximum. -------------
    let db = setof_database("a(c1). a(c2). noise(c3).", "a", "the_set", 3).unwrap();
    let model = db.evaluate().unwrap();
    println!("\n== §4.2 construction (stratified negation) ==");
    for row in model.extension("the_set") {
        println!("  the_set({})", row[0]);
    }
    assert_eq!(
        model.extension("the_set"),
        vec![vec![Value::set([Value::atom("c1"), Value::atom("c2")])]]
    );

    // --- LDL grouping computes it directly. ---------------------------
    let mut grouped = Database::new(Dialect::StratifiedElps);
    grouped
        .load_str(
            "a(c1). a(c2). noise(c3).
             tag(all).
             collected(T, <X>) :- tag(T), a(X).",
        )
        .unwrap();
    let model = grouped.evaluate().unwrap();
    println!("\n== LDL grouping (Definition 14) ==");
    for row in model.extension("collected") {
        println!("  collected({}, {})", row[0], row[1]);
    }
    assert_eq!(
        model.extension("collected"),
        vec![vec![
            Value::atom("all"),
            Value::set([Value::atom("c1"), Value::atom("c2")])
        ]]
    );

    // --- Theorem 11: grouping rewritten into negation. ----------------
    let src = "a(c1). a(c2). tag(all). collected(T, <X>) :- tag(T), a(X).";
    let translated = grouping_to_elps(&lps::syntax::parse_program(src).unwrap()).unwrap();
    println!(
        "\n== the same grouping clause, translated per Theorem 11 ==\n{}",
        lps::syntax::pretty_program(&translated)
    );
    let mut tdb = Database::with_config(
        Dialect::StratifiedElps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 2 },
            ..EvalConfig::default()
        },
    );
    tdb.load_program(translated);
    let mut tmodel = tdb.evaluate().unwrap();
    assert!(tmodel.holds(
        "collected",
        &[
            Value::atom("all"),
            Value::set([Value::atom("c1"), Value::atom("c2")])
        ]
    ));
    println!("translated program agrees ✓");
}
