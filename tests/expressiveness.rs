//! Theorems 7 and 8: the expressiveness limits of LPS, demonstrated
//! mechanically.
//!
//! Impossibility theorems cannot be "run", but their *constructive
//! content* can: the counterexample programs in the proofs derive
//! exactly the facts the proofs say they must, and the semantic
//! invariants the proofs rest on (monotonicity, subset-closure,
//! least-model intersection) hold on the engine.

use lps::prelude::*;

fn set(elems: &[&str]) -> Value {
    Value::set(elems.iter().map(|e| Value::atom(*e)))
}

// -------------------------------------------------------------------
// Theorem 8: {x | A(x)} is not definable without negation.
// -------------------------------------------------------------------

#[test]
fn theorem_8_candidate_is_subset_closed() {
    // B(X) :- (∀x∈X) a(x) — the natural candidate. The theorem's
    // observation: "B(S) would indeed hold, but B(X) would also hold
    // for all subsets X of S."
    let mut db = Database::with_config(
        Dialect::Lps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 3 },
            ..EvalConfig::default()
        },
    );
    db.load_str("a(c1). a(c2). a(c3). b(X) :- forall U in X: a(U).")
        .unwrap();
    let model = db.evaluate().unwrap();
    let rows = model.extension("b");
    assert_eq!(rows.len(), 8, "all 2^3 subsets qualify");
    // Subset-closure: for every derived b(S), every subset of S is
    // also derived.
    let derived: std::collections::BTreeSet<&Value> = rows.iter().map(|r| &r[0]).collect();
    for r in &rows {
        if let Value::Set(elems) = &r[0] {
            for drop in elems {
                let smaller = Value::Set(elems.iter().filter(|e| *e != drop).cloned().collect());
                assert!(derived.contains(&smaller), "{smaller} missing");
            }
        }
    }
}

#[test]
fn theorem_8_proof_counterexample() {
    // The proof: P1 = {A(c1)}, P2 = {A(c1), A(c2)}. Any defining
    // program P* would need B({c1}) ∈ M_{P1∪P*} but B({c1}) ∉
    // M_{P2∪P*}; since every model of P2 is a model of P1 and least
    // models are intersections of Herbrand models, that is
    // contradictory. Mechanically: for the *monotone* candidate, the
    // smaller program's B-facts persist under P2 — so B cannot have
    // flipped to "exactly the full set".
    let candidate = "b(X) :- forall U in X: a(U).";
    let mut db1 = Database::with_config(
        Dialect::Lps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 2 },
            ..EvalConfig::default()
        },
    );
    db1.load_str(&format!("a(c1). seen(c2). {candidate}"))
        .unwrap();
    let mut m1 = db1.evaluate().unwrap();
    assert!(m1.holds("b", &[set(&["c1"])]));

    let mut db2 = Database::with_config(
        Dialect::Lps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 2 },
            ..EvalConfig::default()
        },
    );
    db2.load_str(&format!("a(c1). a(c2). {candidate}")).unwrap();
    let mut m2 = db2.evaluate().unwrap();
    // Monotonicity keeps the stale fact — the candidate FAILS to
    // define exact set construction, as the theorem demands.
    assert!(
        m2.holds("b", &[set(&["c1"])]),
        "monotone programs cannot retract B({{c1}})"
    );
    assert!(m2.holds("b", &[set(&["c1", "c2"])]));
}

#[test]
fn section_4_2_negation_recovers_set_construction() {
    // The paper's resolution: with stratified negation the exact
    // construction IS definable — and it inverts the counterexample.
    let db1 = setof_database("a(c1). seen(c2).", "a", "b", 2).unwrap();
    let mut m1 = db1.evaluate().unwrap();
    assert!(m1.holds("b", &[set(&["c1"])]));
    assert_eq!(m1.count("b", 1), 1);

    let db2 = setof_database("a(c1). a(c2).", "a", "b", 2).unwrap();
    let mut m2 = db2.evaluate().unwrap();
    assert!(!m2.holds("b", &[set(&["c1"])]), "non-monotone: retracted");
    assert!(m2.holds("b", &[set(&["c1", "c2"])]));
    assert_eq!(m2.count("b", 1), 1);
}

// -------------------------------------------------------------------
// Theorem 7: union is not definable without auxiliary predicates.
// -------------------------------------------------------------------

/// The proof's case analysis shows any candidate single-predicate
/// program must already fail on small instances: a rule
/// `p(t1, t2, Z) :- …` with quantifiers ranging over Z forces
/// `p(X, Y, ∅)` for all X, Y, etc. We run the three rule shapes the
/// proof's cases 3–5 analyze and confirm each derives the absurd
/// facts the proof predicts — so none of them defines union.
#[test]
fn theorem_7_case_3_quantifier_over_z_forces_empty_union() {
    // Case 3 shape: p({x}, Y, Z) :- (∀z∈Z) z in Y — quantifying over
    // Z makes p({x}, Y, ∅) hold for ALL Y, refuting it as a union
    // definition.
    let mut db = Database::with_config(
        Dialect::Lps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 2 },
            ..EvalConfig::default()
        },
    );
    db.load_str(
        "seed(a). seed(b).
         p(X, Y, Z) :- one(X), forall W in Z: W in Y.
         one({a}).",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    // p({a}, Y, {}) for every active Y — including Y where
    // {a} ∪ Y ≠ {}: contradiction with union semantics.
    assert!(m.holds("p", &[set(&["a"]), set(&["b"]), set(&[])]));
    assert!(
        m.holds("p", &[set(&["a"]), set(&["a", "b"]), set(&[])]),
        "the proof's contradiction: p(X, Y, ∅) holds for all Y"
    );
}

#[test]
fn theorem_7_case_4_variable_arguments_force_overgeneralization() {
    // Case 4 shape: head p(X, Y, Z) with a quantifier over X forces
    // p(∅, Y, Z) for all Y, Z.
    let mut db = Database::with_config(
        Dialect::Lps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 2 },
            ..EvalConfig::default()
        },
    );
    db.load_str(
        "seed(a). seed(b).
         p(X, Y, Z) :- forall W in X: W in Z.",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    // p(∅, Y, Z) for arbitrary Y, Z — absurd for union.
    assert!(m.holds("p", &[set(&[]), set(&["a"]), set(&["b"])]));
    assert!(m.holds("p", &[set(&[]), set(&["a", "b"]), set(&[])]));
}

#[test]
fn theorem_7_quantifier_free_rules_cannot_reach_large_sets() {
    // The complementary half of the case analysis: quantifier-free
    // rules with set-literal heads only derive facts about sets of
    // bounded size (≤ the largest set constructor in the program).
    // With {₂ the largest constructor, no fact about a 3-element set
    // is derivable.
    let mut db = Database::new(Dialect::Lps);
    db.load_str(
        "atom3(a). atom3(b). atom3(c).
         p({X}, {Y}, {X, Y}) :- atom3(X), atom3(Y).",
    )
    .unwrap();
    let model = db.evaluate().unwrap();
    for row in model.extension("p") {
        for v in &row {
            if let Value::Set(elems) = v {
                assert!(elems.len() <= 2, "bounded by the largest constructor");
            }
        }
    }
    // It does define union correctly on singletons…
    let mut db2 = Database::new(Dialect::Lps);
    db2.load_str(
        "atom3(a). atom3(b). atom3(c).
         p({X}, {Y}, {X, Y}) :- atom3(X), atom3(Y).",
    )
    .unwrap();
    let mut m2 = db2.evaluate().unwrap();
    assert!(m2.holds("p", &[set(&["a"]), set(&["b"]), set(&["a", "b"])]));
    // …but can never cover 2-element operands, which union requires.
    assert!(!m2.holds("p", &[set(&["a", "b"]), set(&["c"]), set(&["a", "b", "c"])]));
}

#[test]
fn theorem_6_auxiliaries_do_define_union() {
    // The contrast the paper draws: WITH auxiliary predicates, union
    // is definable (Theorem 6 / Example 9's program), over a bounded
    // universe.
    let mut db = Database::with_config(
        Dialect::Lps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 3 },
            ..EvalConfig::default()
        },
    );
    db.load_str(
        "seed(a). seed(b). seed(c).
         u(X, Y, Z) :-
             (forall P in X: P in Z),
             (forall Q in Y: Q in Z),
             (forall W in Z: (W in X ; W in Y)).",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    // Spot-check the union table on the full powerset of 3 atoms.
    assert!(m.holds("u", &[set(&["a"]), set(&["b"]), set(&["a", "b"])]));
    assert!(m.holds(
        "u",
        &[set(&["a", "b"]), set(&["b", "c"]), set(&["a", "b", "c"])]
    ));
    assert!(m.holds("u", &[set(&[]), set(&[]), set(&[])]));
    assert!(!m.holds("u", &[set(&["a"]), set(&["b"]), set(&["a", "b", "c"])]));
    // Exactly |{(X,Y)}| = 8×8 = 64 facts: u is a total function on
    // the powerset.
    assert_eq!(m.engine().stats().strata, 1);
    let rows = m.extension("u");
    assert_eq!(rows.len(), 64);
    for row in &rows {
        let (Value::Set(x), Value::Set(y), Value::Set(z)) = (&row[0], &row[1], &row[2]) else {
            panic!("non-set row");
        };
        let expected: std::collections::BTreeSet<_> = x.union(y).cloned().collect();
        assert_eq!(&expected, z);
    }
}
