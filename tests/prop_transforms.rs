//! Property test: both Theorem-6 compilers — the paper's literal
//! construction and the optimized normalizer — compute the same
//! extension for the defined predicate, across generated positive
//! formulas (Definition 12) over a random set EDB.

use proptest::prelude::*;

use lps::prelude::*;
use lps_syntax::parse_program;

/// A random positive formula over fixed variables S1, S2 (sets bound
/// by the driver) rendered directly in concrete syntax. Depth-bounded.
fn formula(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("exists E in S1: E in S2".to_owned()),
        Just("exists E in S2: E in S1".to_owned()),
        Just("S1 = S2".to_owned()),
        Just("subseteq(S1, S2)".to_owned()),
        Just("subseteq(S2, S1)".to_owned()),
    ];
    leaf.prop_recursive(depth, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}), ({b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(({a}) ; ({b}))")),
            inner
                .clone()
                .prop_map(|a| format!("forall U in S1: (U in S2 ; ({a}))")),
            inner.prop_map(|a| format!("forall W in S2: (W in S1 ; ({a}))")),
        ]
    })
    .boxed()
}

/// Random EDB: pairs of subsets of a 4-atom universe.
fn edb() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        (
            proptest::bits::u8::between(0, 4),
            proptest::bits::u8::between(0, 4),
        ),
        1..5,
    )
    .prop_map(|pairs| {
        let render = |mask: u8| {
            let elems: Vec<String> = (0..4)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| format!("a{i}"))
                .collect();
            format!("{{{}}}", elems.join(", "))
        };
        pairs
            .iter()
            .map(|(l, r)| format!("cand({}, {}).", render(*l), render(*r)))
            .collect::<Vec<_>>()
            .join("\n")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paper_and_optimized_compilers_agree(edb in edb(), body in formula(2)) {
        let src = format!("{edb}\nquery(S1, S2) :- cand(S1, S2), {body}.\n");
        let parsed = parse_program(&src)
            .unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));

        // Optimized path (the Database default).
        let mut db_opt = Database::with_config(
            Dialect::Elps,
            EvalConfig {
                set_universe: SetUniverse::ActiveSets,
                ..EvalConfig::default()
            },
        );
        db_opt.load_program(parsed.clone());
        let opt_rows = db_opt
            .evaluate()
            .unwrap_or_else(|e| panic!("opt eval: {e}\n{src}"))
            .extension_n("query", 2);

        // The paper's construction, evaluated over the active universe.
        let paper = compile_positive_paper(&parsed)
            .unwrap_or_else(|e| panic!("paper compile: {e}\n{src}"));
        let mut db_paper = Database::with_config(
            Dialect::Elps,
            EvalConfig {
                set_universe: SetUniverse::ActiveSets,
                ..EvalConfig::default()
            },
        );
        db_paper.load_program(paper);
        let paper_rows = db_paper
            .evaluate()
            .unwrap_or_else(|e| panic!("paper eval: {e}\n{src}"))
            .extension_n("query", 2);

        prop_assert_eq!(opt_rows, paper_rows, "compilers disagree on:\n{}", src);
    }

    /// Theorem 10 on generated programs: peeling translations agree
    /// with direct evaluation (quantifier bodies kept simple so the
    /// translated side stays tractable).
    #[test]
    fn peeling_translations_agree(edb in edb()) {
        let src = format!(
            "{edb}\nsub(S1, S2) :- cand(S1, S2), forall U in S1: U in S2.\n"
        );
        let parsed = parse_program(&src).unwrap();
        let mut direct = Database::new(Dialect::Elps);
        direct.load_program(parsed.clone());

        for translated in [
            elps_to_horn_union(&parsed).unwrap(),
            elps_to_horn_scons(&parsed).unwrap(),
        ] {
            let mut tdb = Database::new(Dialect::Elps);
            tdb.load_program(translated);
            let reports = assert_equivalent(&direct, &tdb, &[("sub", 2)])
                .unwrap_or_else(|e| panic!("{e}\n{src}"));
            prop_assert!(reports.iter().all(|r| r.agrees()));
        }
    }
}
