//! End-to-end smoke test for the serving tier: spawn an in-process
//! [`Server`] on a loopback port, speak the length-prefixed wire
//! protocol to it from scripted clients, and assert the answers — the
//! serving pipeline (writer thread, snapshot hit path, funnel, metrics
//! endpoint) exercised exactly the way `lpsi --serve` wires it up. The
//! server is stopped with the graceful [`Server::shutdown`] rather
//! than by killing a child process, so every thread joins and a
//! panicking assertion never leaks a listener.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use lps::core::serve::{read_frame, write_frame};
use lps::core::{Client, Database, Dialect, Server};

const CHAIN: &str = "e(a, b). e(b, c). e(c, d).\n\
                     t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).\n";

/// Serve `program` on an ephemeral loopback port, exactly as
/// `lpsi --serve 127.0.0.1:0 <file>` does.
fn spawn_server(program: &str) -> Server {
    let mut db = Database::new(Dialect::Elps);
    db.load_str(program).expect("load program");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    Server::spawn(listener, &db).expect("spawn server")
}

#[test]
fn serve_answers_queries_over_the_wire() {
    let mut server = spawn_server(CHAIN);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Point query, twice: the repeat is served from the published
    // snapshot, and both must agree.
    let first = client.query("t(a, X).").unwrap().unwrap();
    assert_eq!(first, vec!["a, b", "a, c", "a, d"]);
    let second = client.query("t(a, X).").unwrap().unwrap();
    assert_eq!(second, first, "snapshot answer must equal writer answer");
    // Conjunctive goal funnels to the writer.
    let rows = client.query("t(a, X), e(X, Y).").unwrap().unwrap();
    assert_eq!(rows, vec!["b, c", "c, d"]);
    // A fact over the wire shows up in subsequent answers.
    client.add_fact("e(d, e5).").unwrap().unwrap();
    let rows = client.query("t(a, X).").unwrap().unwrap();
    assert_eq!(rows, vec!["a, b", "a, c", "a, d", "a, e5"]);
    // Server-side errors come back as `err`, not a dead connection.
    assert!(client.query("t(a, X").unwrap().is_err(), "syntax error");
    let rows = client.query("t(a, X).").unwrap().unwrap();
    assert_eq!(rows.len(), 4, "session survives a bad request");
    server.shutdown();
}

#[test]
fn serve_speaks_raw_length_prefixed_frames() {
    // No client helper: hand-rolled frames prove the wire format is
    // what the docs say — u32 big-endian length, UTF-8 payload,
    // `ok <n>` + sorted lines back.
    let mut server = spawn_server(CHAIN);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let payload = "Q t(b, X).";
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut buf = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut buf).unwrap();
    let response = String::from_utf8(buf).unwrap();
    assert_eq!(response, "ok 2\nb, c\nb, d");
    // Unknown tags answer `err` in a well-formed frame.
    write_frame(&mut stream, "X nonsense").unwrap();
    let response = read_frame(&mut stream).unwrap().expect("frame");
    assert!(response.starts_with("err "), "got: {response}");
    server.shutdown();
}

#[test]
fn serve_metrics_round_trip_over_the_wire() {
    // The `S` op end-to-end: counters move with traffic and the text
    // exposition parses as `name[{labels}] value` lines with latency
    // quantiles for the ops this connection actually issued.
    let mut server = spawn_server(CHAIN);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.query("t(a, X).").unwrap().unwrap(); // cold: funnels
    client.query("t(a, X).").unwrap().unwrap(); // warm: snapshot hit
    let text = client.server_stats().unwrap().unwrap();
    let mut metrics = std::collections::BTreeMap::new();
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("`name value` line");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample `{line}` in:\n{text}"
        );
        metrics.insert(name.to_owned(), value.to_owned());
    }
    assert_eq!(metrics.get("lps_snapshot_hits_total").unwrap(), "1");
    assert_eq!(metrics.get("lps_snapshot_misses_total").unwrap(), "1");
    assert_eq!(metrics.get("lps_republish_total").unwrap(), "1");
    assert_eq!(metrics.get("lps_funnel_depth").unwrap(), "0");
    for q in ["0.5", "0.95", "0.99"] {
        assert!(
            metrics.contains_key(&format!("lps_op_q_us{{quantile=\"{q}\"}}")),
            "missing Q latency quantile {q} in:\n{text}"
        );
    }
    assert_eq!(metrics.get("lps_op_q_us_count").unwrap(), "2");
    // A second scrape sees the first one's latency histogram.
    let text = client.server_stats().unwrap().unwrap();
    assert!(text.contains("lps_op_s_us_count 1"), "{text}");
    server.shutdown();
}

#[test]
fn serve_supports_concurrent_clients() {
    let mut server = spawn_server(CHAIN);
    let addr = server.local_addr();
    let want = vec!["a, b".to_string(), "a, c".into(), "a, d".into()];
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..10 {
                    assert_eq!(client.query("t(a, X).").unwrap().unwrap(), want);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}
