//! End-to-end smoke test for `lpsi --serve`: spawn the real binary on
//! a loopback port, speak the length-prefixed wire protocol to it from
//! scripted clients, and assert the answers — the serving pipeline
//! (writer thread, snapshot hit path, funnel) exercised exactly the
//! way CI and a user would.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use lps::core::serve::{read_frame, write_frame, Client};

/// Kills the spawned server on drop so a panicking assertion never
/// leaks a listener process.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn `lpsi --serve 127.0.0.1:0 <program>` and return the guard
/// plus the resolved address parsed from its `listening on <addr>`
/// line.
fn spawn_server(program: &str) -> (ServerGuard, String) {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve_smoke");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("program.lps");
    std::fs::write(&path, program).expect("write program");
    let mut child = Command::new(env!("CARGO_BIN_EXE_lpsi"))
        .args(["--serve", "127.0.0.1:0", path.to_str().expect("utf8 path")])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn lpsi --serve");
    let stdout = child.stdout.take().expect("stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_owned();
        }
    };
    (ServerGuard(child), addr)
}

const CHAIN: &str = "e(a, b). e(b, c). e(c, d).\n\
                     t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).\n";

#[test]
fn serve_answers_queries_over_the_wire() {
    let (_guard, addr) = spawn_server(CHAIN);
    let mut client = Client::connect(&addr).expect("connect");
    // Point query, twice: the repeat is served from the published
    // snapshot, and both must agree.
    let first = client.query("t(a, X).").unwrap().unwrap();
    assert_eq!(first, vec!["a, b", "a, c", "a, d"]);
    let second = client.query("t(a, X).").unwrap().unwrap();
    assert_eq!(second, first, "snapshot answer must equal writer answer");
    // Conjunctive goal funnels to the writer.
    let rows = client.query("t(a, X), e(X, Y).").unwrap().unwrap();
    assert_eq!(rows, vec!["b, c", "c, d"]);
    // A fact over the wire shows up in subsequent answers.
    client.add_fact("e(d, e5).").unwrap().unwrap();
    let rows = client.query("t(a, X).").unwrap().unwrap();
    assert_eq!(rows, vec!["a, b", "a, c", "a, d", "a, e5"]);
    // Server-side errors come back as `err`, not a dead connection.
    assert!(client.query("t(a, X").unwrap().is_err(), "syntax error");
    let rows = client.query("t(a, X).").unwrap().unwrap();
    assert_eq!(rows.len(), 4, "session survives a bad request");
}

#[test]
fn serve_speaks_raw_length_prefixed_frames() {
    // No client helper: hand-rolled frames prove the wire format is
    // what the docs say — u32 big-endian length, UTF-8 payload,
    // `ok <n>` + sorted lines back.
    let (_guard, addr) = spawn_server(CHAIN);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let payload = "Q t(b, X).";
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut buf = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut buf).unwrap();
    let response = String::from_utf8(buf).unwrap();
    assert_eq!(response, "ok 2\nb, c\nb, d");
    // Unknown tags answer `err` in a well-formed frame.
    write_frame(&mut stream, "X nonsense").unwrap();
    let response = read_frame(&mut stream).unwrap().expect("frame");
    assert!(response.starts_with("err "), "got: {response}");
}

#[test]
fn serve_supports_concurrent_clients() {
    let (_guard, addr) = spawn_server(CHAIN);
    let want = vec!["a, b".to_string(), "a, c".into(), "a, d".into()];
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let want = want.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for _ in 0..10 {
                    assert_eq!(client.query("t(a, X).").unwrap().unwrap(), want);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
}
