//! Stratified negation and LDL grouping: the §4.2/§6 extensions,
//! end-to-end through the surface syntax.

use lps::{Database, Dialect, EvalConfig, SetUniverse, Value};

fn atom(s: &str) -> Value {
    Value::atom(s)
}

#[test]
fn multi_strata_pipeline() {
    // Three strata: closure → complement → grouping over complement.
    let mut db = Database::new(Dialect::StratifiedElps);
    db.load_str(
        "node(a). node(b). node(c). node(d).
         e(a, b). e(b, c).
         reach(a).
         reach(Y) :- reach(X), e(X, Y).
         unreached(X) :- node(X), not reach(X).
         report(summary, <X>) :- unreached(X).",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.stats().strata >= 3);
    assert!(m.holds("report", &[atom("summary"), Value::set([atom("d")])]));
    assert_eq!(m.count("report", 2), 1);
}

#[test]
fn grouping_by_multiple_keys() {
    let mut db = Database::new(Dialect::StratifiedElps);
    db.load_str(
        "sale(shop1, mon, apples). sale(shop1, mon, pears).
         sale(shop1, tue, apples). sale(shop2, mon, plums).
         daily(S, D, <I>) :- sale(S, D, I).",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert_eq!(m.count("daily", 3), 3);
    assert!(m.holds(
        "daily",
        &[
            atom("shop1"),
            atom("mon"),
            Value::set([atom("apples"), atom("pears")])
        ]
    ));
    assert!(m.holds(
        "daily",
        &[atom("shop2"), atom("mon"), Value::set([atom("plums")])]
    ));
}

#[test]
fn grouping_feeds_further_rules() {
    // The grouped set participates in later strata: quantifiers over
    // grouped sets, cardinality checks.
    let mut db = Database::new(Dialect::StratifiedElps);
    db.load_str(
        "takes(ada, logic). takes(ada, db). takes(boole, logic).
         load(S, <C>) :- takes(S, C).
         heavy(S) :- load(S, Cs), card(Cs, N), N >= 2.
         all_logic(S) :- load(S, Cs), forall C in Cs: C = logic.",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.holds("heavy", &[atom("ada")]));
    assert!(!m.holds("heavy", &[atom("boole")]));
    assert!(m.holds("all_logic", &[atom("boole")]));
    assert!(!m.holds("all_logic", &[atom("ada")]));
}

#[test]
fn negation_over_quantified_predicates() {
    // not + (∀…) combined: sets that are NOT fully covered.
    let mut db = Database::new(Dialect::StratifiedElps);
    db.load_str(
        "g({a, b}). g({a}). g({}).
         ok(a).
         covered(S) :- g(S), forall U in S: ok(U).
         uncovered(S) :- g(S), not covered(S).",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.holds("uncovered", &[Value::set([atom("a"), atom("b")])]));
    assert!(!m.holds("uncovered", &[Value::set([atom("a")])]));
    assert!(
        !m.holds("uncovered", &[Value::empty_set()]),
        "∅ is covered vacuously"
    );
}

#[test]
fn unstratified_program_is_rejected() {
    let mut db = Database::new(Dialect::StratifiedElps);
    db.load_str("p(X) :- q(X), not p(X). q(a).").unwrap();
    let err = db.evaluate().unwrap_err();
    assert!(err.to_string().contains("stratified"), "{err}");
}

#[test]
fn grouping_in_recursion_is_rejected() {
    let mut db = Database::new(Dialect::StratifiedElps);
    db.load_str(
        "seed(a).
         collect(X, <Y>) :- seed(X), member_of(X, Y).
         member_of(X, Y) :- collect(X, S), Y in S.",
    )
    .unwrap();
    let err = db.evaluate().unwrap_err();
    assert!(err.to_string().contains("stratified"), "{err}");
}

#[test]
fn doubly_nested_sets_in_elps() {
    // §5: ELPS handles sets of sets.
    let mut db = Database::new(Dialect::Elps);
    db.load_str(
        "family({{a, b}, {c}}).
         member_set(S) :- family(F), S in F.
         flat(X) :- member_set(S), X in S.",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.holds("member_set", &[Value::set([atom("a"), atom("b")])]));
    assert_eq!(m.count("flat", 1), 3);
}

#[test]
fn nested_quantifier_over_nested_sets() {
    // (∀S∈F)(∀x∈S) — quantifying through two levels.
    let mut db = Database::new(Dialect::Elps);
    db.load_str(
        "family({{a, b}, {c}}).
         family({{d}}).
         good(a). good(b). good(c).
         all_good(F) :- family(F), forall S in F: (forall X in S: good(X)).",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    let f1 = Value::set([Value::set([atom("a"), atom("b")]), Value::set([atom("c")])]);
    let f2 = Value::set([Value::set([atom("d")])]);
    assert!(m.holds("all_good", &[f1]));
    assert!(!m.holds("all_good", &[f2]));
}

#[test]
fn function_symbols_as_records() {
    // Uninterpreted function symbols (Definition 1) build structured
    // atoms; sets of such atoms work throughout.
    let mut db = Database::new(Dialect::StratifiedElps);
    db.load_str(
        "pt(p(1, 2)). pt(p(3, 4)).
         cloud(C) :- grouped(C).
         grouped(<P>) :- pt(P).
         wide(C) :- cloud(C), exists P in C: P = p(3, 4).",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    let p34 = Value::app("p", [Value::int(3), Value::int(4)]);
    let p12 = Value::app("p", [Value::int(1), Value::int(2)]);
    let cloud = Value::set([p12, p34]);
    assert!(m.holds("wide", std::slice::from_ref(&cloud)));
}

#[test]
fn stratified_setof_respects_universe_cap() {
    // ActiveSubsets with a cardinality cap below the extension size:
    // the maximal covered set among materialized subsets wins instead.
    let db = lps::core::transform::setof::setof_database(
        "a(c1). a(c2). a(c3).",
        "a",
        "b",
        2, // cap below |{c1,c2,c3}|
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    // With only ≤2-card subsets materialized, the "maximal" covered
    // sets are the three 2-element subsets.
    assert_eq!(m.count("b", 1), 3);
    assert!(m.holds("b", &[Value::set([atom("c1"), atom("c2")])]));
}

#[test]
fn negated_membership_and_comparisons() {
    let mut db = Database::new(Dialect::StratifiedElps);
    db.load_str(
        "g({1, 2}). g({2, 3}). g({}).
         without_one(S) :- g(S), 1 notin S.
         small(S) :- g(S), card(S, N), not N >= 2.",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.holds("without_one", &[Value::set([Value::int(2), Value::int(3)])]));
    assert!(m.holds("without_one", &[Value::empty_set()]));
    assert!(!m.holds("without_one", &[Value::set([Value::int(1), Value::int(2)])]));
    assert!(m.holds("small", &[Value::empty_set()]));
    assert!(!m.holds("small", &[Value::set([Value::int(1), Value::int(2)])]));
}

#[test]
fn config_strategies_match_on_stratified_grouping() {
    let src = "obs(s1, x). obs(s1, y). obs(s2, z).
         grp(S, <V>) :- obs(S, V).
         big(S) :- grp(S, Vs), card(Vs, N), N >= 2.
         lonely(S) :- grp(S, _Vs), not big(S).";
    let run = |strategy| {
        let mut db = Database::with_config(
            Dialect::StratifiedElps,
            EvalConfig {
                strategy,
                set_universe: SetUniverse::Reject,
                ..EvalConfig::default()
            },
        );
        db.load_str(src).unwrap();
        let m = db.evaluate().unwrap();
        (m.extension_n("big", 1), m.extension_n("lonely", 1))
    };
    assert_eq!(
        run(lps::FixpointStrategy::Naive),
        run(lps::FixpointStrategy::SemiNaive)
    );
}
