//! E1: every numbered example in the paper (§1, Examples 1–6),
//! evaluated end-to-end with exact expected models.

use lps::{Database, Dialect, Value};

fn atom(s: &str) -> Value {
    Value::atom(s)
}

fn set(elems: &[&str]) -> Value {
    Value::set(elems.iter().map(|e| Value::atom(*e)))
}

#[test]
fn example_1_disjointness() {
    let mut db = Database::new(Dialect::Lps);
    db.load_str(
        "pair({a, b}, {c, d}). pair({a, b}, {b}). pair({}, {}).
         pair({a}, {}). pair({c}, {c}).
         disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.holds("disj", &[set(&["a", "b"]), set(&["c", "d"])]));
    assert!(!m.holds("disj", &[set(&["a", "b"]), set(&["b"])]));
    assert!(m.holds("disj", &[set(&[]), set(&[])]));
    assert!(m.holds("disj", &[set(&["a"]), set(&[])]));
    assert!(!m.holds("disj", &[set(&["c"]), set(&["c"])]));
    assert_eq!(m.count("disj", 2), 3);
}

#[test]
fn example_2_subset() {
    let mut db = Database::new(Dialect::Lps);
    db.load_str(
        "pair({a}, {a, b}). pair({a, b}, {a}). pair({}, {z}). pair({b, c}, {b, c}).
         subset(X, Y) :- pair(X, Y), forall U in X: U in Y.",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.holds("subset", &[set(&["a"]), set(&["a", "b"])]));
    assert!(!m.holds("subset", &[set(&["a", "b"]), set(&["a"])]));
    assert!(m.holds("subset", &[set(&[]), set(&["z"])]));
    assert!(m.holds("subset", &[set(&["b", "c"]), set(&["b", "c"])]));
}

#[test]
fn example_3_union_via_positive_body() {
    // union(X,Y,Z) with the disjunctive third condition — exercised
    // over a candidate pool wide enough to include near-misses.
    let mut db = Database::new(Dialect::Lps);
    db.load_str(
        "cand({a}, {b}, {a, b}).
         cand({a}, {b}, {a, b, c}).   % superset: not the union
         cand({a}, {b}, {a}).          % misses b
         cand({}, {}, {}).
         cand({a, b}, {b, c}, {a, b, c}).
         u(X, Y, Z) :- cand(X, Y, Z),
             (forall U in X: U in Z),
             (forall V in Y: V in Z),
             (forall W in Z: (W in X ; W in Y)).",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.holds("u", &[set(&["a"]), set(&["b"]), set(&["a", "b"])]));
    assert!(!m.holds("u", &[set(&["a"]), set(&["b"]), set(&["a", "b", "c"])]));
    assert!(!m.holds("u", &[set(&["a"]), set(&["b"]), set(&["a"])]));
    assert!(m.holds("u", &[set(&[]), set(&[]), set(&[])]));
    assert!(m.holds(
        "u",
        &[set(&["a", "b"]), set(&["b", "c"]), set(&["a", "b", "c"])]
    ));
    assert_eq!(m.count("u", 3), 3);
}

#[test]
fn example_4_unnest() {
    let mut db = Database::new(Dialect::Lps);
    db.load_str(
        "r(x1, {p, q}). r(x2, {q}). r(x3, {}).
         s(X, Y) :- r(X, Ys), Y in Ys.",
    )
    .unwrap();
    let m = db.evaluate().unwrap();
    let expected = vec![
        vec![atom("x1"), atom("p")],
        vec![atom("x1"), atom("q")],
        vec![atom("x2"), atom("q")],
    ];
    assert_eq!(
        m.extension("s"),
        expected,
        "x3's empty set contributes nothing"
    );
}

#[test]
fn example_5_sum_of_a_set_of_numbers() {
    // sum(Z, k) via the paper's recursive disjoint-union clause with
    // base case sum(X, n) :- X = {n}. The driver relation bounds the
    // subsets the recursion visits.
    let mut db = Database::new(Dialect::Elps);
    db.load_str(
        "input({3, 5, 9}).
         visit(Z) :- input(Z).
         visit(X) :- visit(Z), disj_union(X, _Y, Z).
         sum(S, 0) :- visit(S), S = {}.
         sum(S, N) :- visit(S), S = {N}.
         sum(Z, K) :- visit(Z), disj_union(X, Y, Z), X != {}, Y != {},
                      sum(X, M), sum(Y, N), M + N = K.",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    let input = Value::set([Value::int(3), Value::int(5), Value::int(9)]);
    assert!(m.holds("sum", &[input.clone(), Value::int(17)]));
    // Functional: exactly one sum per visited set.
    let sums: Vec<Vec<Value>> = m.extension("sum");
    let for_input: Vec<&Vec<Value>> = sums.iter().filter(|r| r[0] == input).collect();
    assert_eq!(for_input.len(), 1);
    // Subset sums are also correct.
    assert!(m.holds(
        "sum",
        &[Value::set([Value::int(3), Value::int(5)]), Value::int(8)]
    ));
    assert!(m.holds("sum", &[Value::empty_set(), Value::int(0)]));
}

#[test]
fn example_6_parts_cost() {
    // obj-cost via sum-costs over the component sets.
    let mut db = Database::new(Dialect::Elps);
    db.load_str(
        "parts(widget, {bolt, nut, gear}).
         parts(gadget, {bolt, gear}).
         parts(trinket, {nut}).
         cost(bolt, 2). cost(nut, 1). cost(gear, 7).

         visit(Y) :- parts(_X, Y).
         visit(X) :- visit(Z), disj_union(X, _Y, Z).
         sum_costs(S, 0) :- visit(S), S = {}.
         sum_costs(S, N) :- visit(S), S = {P}, cost(P, N).
         sum_costs(Z, K) :- visit(Z), disj_union(X, Y, Z), X != {}, Y != {},
                            sum_costs(X, M), sum_costs(Y, N), M + N = K.
         obj_cost(X, N) :- parts(X, Y), sum_costs(Y, N).",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.holds("obj_cost", &[atom("widget"), Value::int(10)]));
    assert!(m.holds("obj_cost", &[atom("gadget"), Value::int(9)]));
    assert!(m.holds("obj_cost", &[atom("trinket"), Value::int(1)]));
    assert_eq!(m.count("obj_cost", 2), 3);
}

#[test]
fn definition_4_empty_domain_is_vacuously_true() {
    // (∀x∈X)φ is true whenever X = ∅ — the paper stresses this twice
    // (Definition 4 and the §4.1 hoisting warning).
    let mut db = Database::new(Dialect::Lps);
    db.load_str(
        "holder({}). holder({a}).
         % q never holds, yet empty X passes the quantifier.
         ok(X) :- holder(X), forall U in X: impossible(U).
         % §4.1: the conjunct INSIDE the quantifier scope is not
         % checked for the empty set…
         inside(X) :- holder(X), forall U in X: (flag, marker(U)).
         % …while outside it always is.
         outside(X) :- holder(X), flag2, forall U in X: marker(U).
         pred flag. pred flag2.",
    )
    .unwrap();
    let mut m = db.evaluate().unwrap();
    assert!(m.holds("ok", &[set(&[])]));
    assert!(!m.holds("ok", &[set(&["a"])]));
    // flag is false: inside({}) still holds (vacuous), outside({}) fails.
    assert!(m.holds("inside", &[set(&[])]));
    assert!(!m.holds("outside", &[set(&[])]));
}
