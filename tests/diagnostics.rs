//! Error reporting across the pipeline: syntax, sorts, dialect
//! restrictions, safety, stratification, builtin modes, arithmetic.
//! A reproduction a downstream user would adopt must fail *well*.

use lps::{CoreError, Database, Dialect, EvalConfig, SetUniverse};

fn err_of(src: &str, dialect: Dialect) -> CoreError {
    let mut db = Database::new(dialect);
    match db.load_str(src) {
        Err(e) => e,
        Ok(_) => db.evaluate().expect_err("expected failure"),
    }
}

#[test]
fn syntax_errors_render_with_location() {
    let mut db = Database::new(Dialect::Elps);
    let err = db.load_str("p(X :- q(X).").unwrap_err();
    let CoreError::Syntax(e) = &err else {
        panic!("expected syntax error, got {err:?}");
    };
    let rendered = e.render("p(X :- q(X).");
    assert!(rendered.contains("line 1"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
}

#[test]
fn lexer_reserved_character() {
    let err = err_of("p($x).", Dialect::Elps);
    assert!(err.to_string().contains("reserved"), "{err}");
}

#[test]
fn sort_conflict_in_lps_mode() {
    // X used as a set (domain) and as an integer.
    let err = err_of(
        "q(X) :- p(X), forall U in X: U = U.\nr(X) :- p(X), X < 3.",
        Dialect::Lps,
    );
    assert!(matches!(err, CoreError::Sort { .. }), "{err}");
    assert!(err.to_string().contains("sort"), "{err}");
}

#[test]
fn nested_sets_rejected_in_lps_mode() {
    let err = err_of("p({{a}}).", Dialect::Lps);
    assert!(
        err.to_string().contains("nest") || err.to_string().contains("sort"),
        "{err}"
    );
}

#[test]
fn negation_in_wrong_dialect_names_the_fix() {
    let err = err_of("p(X) :- q(X), not r(X).", Dialect::Elps);
    assert!(err.to_string().contains("StratifiedElps"), "{err}");
}

#[test]
fn pure_lps_rejects_extended_bodies_with_pointer() {
    let err = err_of("p(X) :- q(X) ; r(X).", Dialect::PureLps);
    assert!(err.to_string().contains("Definition 5"), "{err}");
}

#[test]
fn builtin_head_redefinition_cites_definition_5() {
    let err = err_of("union(X, Y, Z) :- p(X, Y, Z).", Dialect::Elps);
    assert!(err.to_string().contains("Definition 5"), "{err}");
    // Also via scons and card.
    let err = err_of("card(X, N) :- p(X, N).", Dialect::Elps);
    assert!(err.to_string().contains("special"), "{err}");
}

#[test]
fn unsafe_rule_names_the_variable() {
    let err = err_of("p(X, Y) :- q(X).", Dialect::Elps);
    assert!(err.to_string().contains("`Y`"), "{err}");
    assert!(
        err.to_string().contains("unsafe") || err.to_string().contains("bound"),
        "{err}"
    );
}

#[test]
fn unsafe_quantifier_domain_suggests_policy() {
    let err = err_of("a(c). b(X) :- forall U in X: a(U).", Dialect::Elps);
    assert!(err.to_string().contains("ActiveSets"), "{err}");
}

#[test]
fn unstratified_negation_names_the_cycle() {
    let err = err_of("p(X) :- q(X), not p(X). q(a).", Dialect::StratifiedElps);
    let msg = err.to_string();
    assert!(msg.contains("stratified"), "{msg}");
    assert!(msg.contains("`p`"), "{msg}");
}

#[test]
fn arithmetic_type_error_shows_value() {
    let err = err_of("p(K) :- q(X), K = X + 1. q(oops).", Dialect::Elps);
    let msg = err.to_string();
    assert!(msg.contains("integer"), "{msg}");
    assert!(msg.contains("oops"), "{msg}");
}

#[test]
fn arity_mismatch_is_caught_before_evaluation() {
    let err = err_of("p(a). q(X) :- p(X, X).", Dialect::Elps);
    assert!(
        err.to_string().contains("argument"),
        "arity mismatch surfaced: {err}"
    );
}

#[test]
fn iteration_limit_stops_runaway_constructor_recursion() {
    // grow builds ever-larger sets: no fixpoint. The engine must stop
    // at the configured bound instead of spinning forever.
    let mut db = Database::with_config(
        Dialect::Elps,
        EvalConfig {
            max_iterations: 50,
            ..EvalConfig::default()
        },
    );
    db.load_str(
        "elem(a). seed({}).
         grown(S) :- seed(S).
         grown(T) :- grown(S), card(S, N), mul(N, 0, Z), int_tag(Z),
                     scons(f(N), S, T).
         int_tag(0).",
    )
    .unwrap();
    let err = db.evaluate().unwrap_err();
    assert!(err.to_string().contains("50"), "{err}");
}

#[test]
fn powerset_universe_cap_is_enforced() {
    let mut db = Database::with_config(
        Dialect::Elps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 3 },
            ..EvalConfig::default()
        },
    );
    let mut facts = String::new();
    for i in 0..25 {
        facts.push_str(&format!("a(c{i}).\n"));
    }
    db.load_str(&facts).unwrap();
    let err = db.evaluate().unwrap_err();
    assert!(err.to_string().contains("2^"), "{err}");
}

#[test]
fn grouping_without_body_is_rejected() {
    let err = err_of("p(<X>).", Dialect::StratifiedElps);
    assert!(err.to_string().contains("body"), "{err}");
}

#[test]
fn negated_builtin_call_position_is_explained() {
    let err = err_of(
        "p(X) :- q(X, Y, Z), not union(X, Y, Z).",
        Dialect::StratifiedElps,
    );
    assert!(err.to_string().contains("union"), "{err}");
}

#[test]
fn errors_are_values_not_panics() {
    // A grab-bag of malformed programs: every one must produce an Err,
    // never a panic.
    let cases = [
        "p(.",
        "p :- .",
        ":- q.",
        "p(X) :- forall X: q(X).",
        "p(X) :- forall U in: q(U).",
        "pred p(weird).",
        "p() .",
        "p(X) :- 1 + 2.",
        "p(<X>, <Y>) :- q(X, Y).",
        "p(X) :- not not q(X).",
    ];
    for src in cases {
        let mut db = Database::new(Dialect::StratifiedElps);
        let result = db
            .load_str(src)
            .map(|_| ())
            .and_then(|()| db.evaluate().map(|_| ()));
        assert!(result.is_err(), "should fail: {src}");
    }
}
