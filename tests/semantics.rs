//! Theorems 3 and 5: minimal-model and fixpoint semantics.
//!
//! * `M_P = lfp(T_P) = T_P ↑ ω` — naive iteration (the literal
//!   operator) and semi-naive evaluation must produce identical
//!   models, on hand-picked and on generated programs.
//! * Monotonicity — the property both impossibility proofs
//!   (Theorems 7/8) lean on: enlarging the program never removes
//!   facts from the least model.

use proptest::prelude::*;

use lps::{Database, Dialect, EvalConfig, FixpointStrategy, SetUniverse, Value};

fn eval_with(
    src: &str,
    strategy: FixpointStrategy,
    dialect: Dialect,
) -> Vec<(String, Vec<Vec<Value>>)> {
    let mut db = Database::with_config(
        dialect,
        EvalConfig {
            strategy,
            ..EvalConfig::default()
        },
    );
    db.load_str(src).unwrap();
    let model = db.evaluate().unwrap();
    // Collect extensions of every user predicate mentioned in the
    // source (cheap heuristic: probe names we know appear).
    let mut names: Vec<(String, usize)> = Vec::new();
    for cap in src.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
        if !cap.is_empty() && cap.chars().next().unwrap().is_lowercase() {
            for arity in 0..4 {
                if model.engine().lookup_pred(cap, arity).is_some() {
                    names.push((cap.to_owned(), arity));
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|(n, a)| (n.clone(), model.extension_n(&n, a)))
        .collect()
}

fn assert_strategies_agree(src: &str, dialect: Dialect) {
    let naive = eval_with(src, FixpointStrategy::Naive, dialect);
    let semi = eval_with(src, FixpointStrategy::SemiNaive, dialect);
    assert_eq!(naive, semi, "naive and semi-naive disagree on:\n{src}");
}

#[test]
fn strategies_agree_on_recursion() {
    assert_strategies_agree(
        "e(a, b). e(b, c). e(c, d). e(d, a).
         t(X, Y) :- e(X, Y).
         t(X, Z) :- e(X, Y), t(Y, Z).",
        Dialect::Elps,
    );
}

#[test]
fn strategies_agree_on_quantified_recursion() {
    // Recursive predicate inside a ∀ group — the tricky semi-naive
    // case (quantifier trigger).
    assert_strategies_agree(
        "item(a). item(b). item(c).
         group({a, b}). group({b, c}). group({a, b, c}). group({}).
         good(a).
         good(X) :- item(X), base(X).
         base(b).
         all_good(S) :- group(S), forall U in S: good(U).",
        Dialect::Elps,
    );
}

#[test]
fn strategies_agree_on_set_construction_chain() {
    // Sets constructed during evaluation (scons chains) — exercises
    // the universe-growth trigger in both drivers.
    assert_strategies_agree(
        "seed({}).
         elem(a). elem(b). elem(c).
         grown(S) :- seed(S).
         grown(T) :- grown(S), elem(E), scons(E, S, T), card(T, N), N <= 2.",
        Dialect::Elps,
    );
}

#[test]
fn strategies_agree_on_stratified_negation() {
    assert_strategies_agree(
        "node(a). node(b). node(c). e(a, b).
         reach(a).
         reach(Y) :- reach(X), e(X, Y).
         isolated(X) :- node(X), not reach(X).",
        Dialect::StratifiedElps,
    );
}

#[test]
fn fixpoint_round_counts_scale_with_chain_depth() {
    // T_P ↑ ω reaches the fixpoint in O(depth) rounds on a chain.
    for n in [4usize, 8, 16] {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("e(v{i}, v{}).\n", i + 1));
        }
        src.push_str("t(X, Y) :- e(X, Y).\nt(X, Z) :- e(X, Y), t(Y, Z).\n");
        let mut db = Database::new(Dialect::Elps);
        db.load_str(&src).unwrap();
        let model = db.evaluate().unwrap();
        let stats = model.stats();
        assert!(
            stats.iterations >= n - 1,
            "chain of {n} needs ≥{} rounds, got {}",
            n - 1,
            stats.iterations
        );
        assert_eq!(model.count("t", 2), n * (n + 1) / 2);
    }
}

#[test]
fn monotonicity_on_fact_addition() {
    // M_{P} ⊆ M_{P ∪ {fact}} for positive programs — the engine of
    // Theorem 8's proof.
    let base = "a(c1).
        group({c1}). group({c1, c2}). group({}).
        all_a(S) :- group(S), forall U in S: a(U).
        some_a(S) :- group(S), exists U in S: a(U).";
    let mut db1 = Database::new(Dialect::Elps);
    db1.load_str(base).unwrap();
    let m1 = db1.evaluate().unwrap();
    let mut db2 = Database::new(Dialect::Elps);
    db2.load_str(base).unwrap();
    db2.load_str("a(c2).").unwrap();
    let m2 = db2.evaluate().unwrap();
    for pred in ["all_a", "some_a"] {
        let small = m1.extension_n(pred, 1);
        let big = m2.extension_n(pred, 1);
        for row in &small {
            assert!(
                big.contains(row),
                "monotonicity violated on {pred}: {row:?}"
            );
        }
    }
    // And strictly more is derivable.
    assert!(m2.count("all_a", 1) > m1.count("all_a", 1));
}

// -------------------------------------------------------------------
// Property tests: generated programs.
// -------------------------------------------------------------------

/// Generate a random EDB over a small atom universe plus a fixed rule
/// library exercising joins, quantifiers, builtins, and recursion.
fn edb_strategy() -> impl Strategy<Value = String> {
    let edge = (0u8..5, 0u8..5).prop_map(|(a, b)| format!("e(n{a}, n{b})."));
    let tag = (0u8..5).prop_map(|a| format!("tagged(n{a})."));
    let grp = proptest::collection::vec(0u8..5, 0..4).prop_map(|v| {
        let elems: Vec<String> = v.iter().map(|i| format!("n{i}")).collect();
        format!("g({{{}}}).", elems.join(", "))
    });
    (
        proptest::collection::vec(edge, 1..8),
        proptest::collection::vec(tag, 0..4),
        proptest::collection::vec(grp, 1..5),
    )
        .prop_map(|(e, t, g)| {
            let mut out = String::new();
            for f in e.iter().chain(t.iter()).chain(g.iter()) {
                out.push_str(f);
                out.push('\n');
            }
            out
        })
}

const RULES: &str = "
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    self_reaching(X) :- t(X, X).
    all_tagged(S) :- g(S), forall U in S: tagged(U).
    all_reach_tagged(S) :- g(S), forall U in S: (exists V in S: t(U, V)).
    pair_sets(S1, S2) :- g(S1), g(S2), subseteq(S1, S2).
    merged(S3) :- g(S1), g(S2), union(S1, S2, S3).
    counted(S, N) :- g(S), card(S, N).
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 5 on random programs: the two fixpoint strategies
    /// compute the same least model.
    #[test]
    fn naive_equals_seminaive_on_random_edbs(edb in edb_strategy()) {
        let src = format!("{edb}\n{RULES}");
        let naive = eval_with(&src, FixpointStrategy::Naive, Dialect::Elps);
        let semi = eval_with(&src, FixpointStrategy::SemiNaive, Dialect::Elps);
        prop_assert_eq!(naive, semi);
    }

    /// Monotonicity on random programs: adding one random fact never
    /// removes derived facts.
    #[test]
    fn tp_is_monotone_on_random_edbs(edb in edb_strategy(), extra_a in 0u8..5, extra_b in 0u8..5) {
        let src = format!("{edb}\n{RULES}");
        let bigger = format!("{src}\ne(n{extra_a}, n{extra_b}).\n");
        let small = eval_with(&src, FixpointStrategy::SemiNaive, Dialect::Elps);
        let big = eval_with(&bigger, FixpointStrategy::SemiNaive, Dialect::Elps);
        let big_map: std::collections::HashMap<&String, &Vec<Vec<Value>>> =
            big.iter().map(|(n, rows)| (n, rows)).collect();
        for (name, rows) in &small {
            let big_rows = big_map.get(name).expect("predicate survives");
            for row in rows {
                prop_assert!(
                    big_rows.contains(row),
                    "monotonicity violated on {}: {:?}",
                    name,
                    row
                );
            }
        }
    }

    /// The ∀-trigger optimization never changes the model.
    #[test]
    fn forall_trigger_index_is_transparent(edb in edb_strategy()) {
        let src = format!("{edb}\n{RULES}");
        let run = |trigger: bool| {
            let mut db = Database::with_config(
                Dialect::Elps,
                EvalConfig {
                    forall_trigger_index: trigger,
                    ..EvalConfig::default()
                },
            );
            db.load_str(&src).unwrap();
            let m = db.evaluate().unwrap();
            m.extension_n("all_tagged", 1)
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// ActiveSubsets universes don't change safe programs' answers.
    #[test]
    fn universe_policy_is_transparent_for_safe_programs(edb in edb_strategy()) {
        let src = format!("{edb}\n{RULES}");
        let run = |u: SetUniverse| {
            let mut db = Database::with_config(
                Dialect::Elps,
                EvalConfig {
                    set_universe: u,
                    ..EvalConfig::default()
                },
            );
            db.load_str(&src).unwrap();
            let m = db.evaluate().unwrap();
            (m.extension_n("all_tagged", 1), m.extension_n("t", 2))
        };
        prop_assert_eq!(run(SetUniverse::Reject), run(SetUniverse::ActiveSets));
    }
}
