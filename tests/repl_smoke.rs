//! End-to-end smoke tests for the `lpsi` REPL command surface: drive
//! the real binary with scripted stdin and assert on its stdout.

use std::io::Write;
use std::process::{Command, Stdio};

/// Run `lpsi` with `input` on stdin (plus any extra CLI `args`) and
/// return (stdout, stderr).
fn run_lpsi(args: &[&str], input: &str) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lpsi"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lpsi");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait lpsi");
    assert!(out.status.success(), "lpsi exited nonzero: {out:?}");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn loads_facts_and_answers_queries() {
    let (stdout, _) = run_lpsi(
        &[],
        "pair({a, b}, {c}). pair({a, b}, {b, c}).\n\
         disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.\n\
         ?- disj(X, Y).\n\
         :quit\n",
    );
    assert!(stdout.contains("ok."), "facts accepted:\n{stdout}");
    assert!(stdout.contains("disj("), "query rows printed:\n{stdout}");
    assert!(
        stdout.contains("1 answer(s)."),
        "one disjoint pair:\n{stdout}"
    );
}

#[test]
fn dialect_command_switches_and_rejects_unknown() {
    let (stdout, _) = run_lpsi(
        &[],
        ":dialect purelps\n:dialect lps\n:dialect elps\n:dialect stratified\n:dialect nope\n:quit\n",
    );
    for expected in [
        "dialect = PureLps",
        "dialect = Lps",
        "dialect = Elps",
        "dialect = StratifiedElps",
        "unknown dialect `nope`",
    ] {
        assert!(stdout.contains(expected), "missing {expected:?}:\n{stdout}");
    }
}

#[test]
fn dialect_gates_what_programs_are_accepted() {
    // Stratified negation parses everywhere but only the stratified
    // dialect accepts it.
    let program = "p(a). q(X) :- p(X), not r(X).\n";
    let (stdout, _) = run_lpsi(&[], &format!(":dialect elps\n{program}:quit\n"));
    assert!(stdout.contains("error"), "elps rejects negation:\n{stdout}");
    let (stdout, _) = run_lpsi(
        &[],
        &format!(":dialect stratified\n{program}?- q(X).\n:quit\n"),
    );
    assert!(
        stdout.contains("q(a)"),
        "stratified accepts negation:\n{stdout}"
    );
}

#[test]
fn universe_command_switches_policy() {
    let (stdout, _) = run_lpsi(
        &[],
        ":universe active\n:universe subsets 3\n:universe reject\n:universe bogus\n:quit\n",
    );
    for expected in [
        "universe = ActiveSets",
        "universe = ActiveSubsets { max_card: 3 }",
        "universe = Reject",
        "usage: :universe",
    ] {
        assert!(stdout.contains(expected), "missing {expected:?}:\n{stdout}");
    }
}

#[test]
fn model_prints_a_predicate_extension() {
    let (stdout, _) = run_lpsi(
        &[],
        "edge(a, b). edge(b, c).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- edge(X, Y), path(Y, Z).\n\
         :model path\n:model\n:quit\n",
    );
    for expected in [
        "path(a, b)",
        "path(b, c)",
        "path(a, c)",
        "3 fact(s).",
        "usage: :model PRED",
    ] {
        assert!(stdout.contains(expected), "missing {expected:?}:\n{stdout}");
    }
}

#[test]
fn normalized_prints_compiled_program() {
    // A forall body compiles into auxiliary predicates; the normalized
    // listing must still define the source predicate.
    let (stdout, _) = run_lpsi(
        &[],
        "pair({a}, {b}).\n\
         disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.\n\
         :normalized\n:quit\n",
    );
    assert!(stdout.contains("disj("), "normalized keeps disj:\n{stdout}");
    assert!(stdout.contains(":-"), "normalized prints rules:\n{stdout}");
}

#[test]
fn stats_reports_after_evaluation_only() {
    let (stdout, _) = run_lpsi(
        &[],
        ":stats\np(a). q(X) :- p(X).\n?- q(X).\n:stats\n:quit\n",
    );
    assert!(stdout.contains("no evaluation yet."), "before:\n{stdout}");
    assert!(stdout.contains("facts="), "after:\n{stdout}");
    assert!(stdout.contains("rounds="), "after:\n{stdout}");
}

#[test]
fn sorts_program_clear_and_help_round_out_the_surface() {
    let (stdout, _) = run_lpsi(
        &[],
        "r(x1, {p, q}).\ns(X, Y) :- r(X, Ys), Y in Ys.\n\
         :sorts\n:program\n:clear\n:program\n:help\n:bogus\n:quit\n",
    );
    assert!(stdout.contains("pred r(atom, set)."), "sorts:\n{stdout}");
    assert!(stdout.contains("cleared."), "clear:\n{stdout}");
    assert!(
        stdout.contains(":help :dialect :universe"),
        "help:\n{stdout}"
    );
    assert!(
        stdout.contains("unknown command `:bogus`"),
        "bogus:\n{stdout}"
    );
    // After :clear the accumulated program is gone.
    let after_clear = stdout.split("cleared.").nth(1).expect("output after clear");
    assert!(
        !after_clear.contains("r(x1"),
        "program gone after clear:\n{stdout}"
    );
}

#[test]
fn reset_drops_facts_but_keeps_rules() {
    let (stdout, _) = run_lpsi(
        &[],
        "edge(a, b). edge(b, c).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- edge(X, Y), path(Y, Z).\n\
         ?- path(X, Y).\n\
         :reset\n\
         ?- path(X, Y).\n\
         edge(c, d).\n\
         ?- path(X, Y).\n\
         :program\n\
         :quit\n",
    );
    assert!(stdout.contains("3 answer(s)."), "before reset:\n{stdout}");
    assert!(
        stdout.contains(
            "reset: dropped 2 fact(s); rules and batch plans kept; demand plans evicted."
        ),
        "reset notice:\n{stdout}"
    );
    assert!(stdout.contains("no."), "model empty after reset:\n{stdout}");
    assert!(
        stdout.contains("1 answer(s)."),
        "fresh fact evaluates under the kept rules:\n{stdout}"
    );
    // The source kept the rules but dropped the old facts.
    let after_reset = stdout.split("reset:").nth(1).expect("output after reset");
    assert!(
        after_reset.contains("path(X, Z) :-"),
        "rules kept:\n{stdout}"
    );
    assert!(
        !after_reset.contains("edge(a, b)."),
        "facts gone:\n{stdout}"
    );
}

#[test]
fn facts_after_a_query_update_the_live_session_incrementally() {
    // `:demand off` pins the materialized-model path this test is
    // about; demand-driven answering has its own tests below.
    let (stdout, _) = run_lpsi(
        &[],
        ":demand off\n\
         e(a, b).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- e(X, Y), t(Y, Z).\n\
         ?- t(X, Y).\n\
         e(b, c).\n\
         ?- t(X, Y).\n\
         :stats\n\
         :quit\n",
    );
    assert!(stdout.contains("1 answer(s)."), "initial model:\n{stdout}");
    assert!(stdout.contains("3 answer(s)."), "updated model:\n{stdout}");
    assert!(
        stdout.contains("incr_runs=1 seeded=1"),
        "the second query must go through the incremental path, \
         not a recompute:\n{stdout}"
    );
}

#[test]
fn loads_program_files_from_argv() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lpsi_smoke");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("facts.lps");
    std::fs::write(&path, "p(a). p(b).\n").expect("write program");
    let (stdout, stderr) = run_lpsi(&[path.to_str().expect("utf8 path")], "?- p(X).\n:quit\n");
    assert!(
        stderr.contains("loaded"),
        "load notice on stderr:\n{stderr}"
    );
    assert!(
        stdout.contains("2 answer(s)."),
        "facts from file:\n{stdout}"
    );
}

#[test]
fn bad_input_reports_error_and_keeps_session_alive() {
    let (stdout, _) = run_lpsi(&[], "this is not lps(\n.\np(a).\n?- p(X).\n:quit\n");
    assert!(stdout.contains("error"), "parse error reported:\n{stdout}");
    assert!(
        stdout.contains("1 answer(s)."),
        "session continues:\n{stdout}"
    );
}

#[test]
fn demand_queries_answer_without_materializing() {
    // A point query over a chain TC: the demand path seeds one magic
    // fact, compiles adornments, and never runs an incremental pass.
    let (stdout, _) = run_lpsi(
        &[],
        "e(a, b). e(b, c). e(c, d).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- e(X, Y), t(Y, Z).\n\
         ?- t(b, X).\n\
         :stats\n\
         :quit\n",
    );
    assert!(stdout.contains("t(b, c)"), "demand answers:\n{stdout}");
    assert!(stdout.contains("t(b, d)"), "demand answers:\n{stdout}");
    assert!(stdout.contains("2 answer(s)."), "two answers:\n{stdout}");
    assert!(
        stdout.contains("magic_seeds=1") && stdout.contains("demand_fb=0"),
        "demand counters in :stats:\n{stdout}"
    );
}

#[test]
fn demand_toggle_switches_and_rejects_unknown() {
    let (stdout, _) = run_lpsi(
        &[],
        ":demand off\n:demand on\n:demand cold\n:demand\n:demand maybe\n:quit\n",
    );
    assert!(stdout.contains("demand = off"), "off:\n{stdout}");
    assert!(stdout.contains("demand = on"), "on:\n{stdout}");
    assert!(stdout.contains("demand = cold"), "cold:\n{stdout}");
    assert!(
        stdout.contains("unknown demand mode `maybe`"),
        "bad arg:\n{stdout}"
    );
}

#[test]
fn retained_demand_spaces_continue_across_queries_and_facts() {
    // Query, repeat, add a fact, query again: the second and third
    // queries continue over the retained demand space (`demand_cont`)
    // instead of re-deriving, and the new edge shows up.
    let (stdout, _) = run_lpsi(
        &[],
        "e(a, b). e(b, c).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- t(X, Y), e(Y, Z).\n\
         ?- t(a, X).\n\
         ?- t(a, X).\n\
         :stats\n\
         e(c, d).\n\
         ?- t(a, X).\n\
         :stats\n\
         :quit\n",
    );
    assert!(stdout.contains("2 answer(s)."), "first answers:\n{stdout}");
    assert!(
        stdout.contains("demand_cont=1"),
        "repeat query continues over the retained space:\n{stdout}"
    );
    assert!(
        stdout.contains("magic_seeds=1"),
        "the repeated constant is a duplicate seed, not re-counted:\n{stdout}"
    );
    assert!(
        stdout.contains("3 answer(s)."),
        "the new edge extends the retained cone:\n{stdout}"
    );
    assert!(
        stdout.contains("incr_runs=0"),
        "never materialized — the continuation is demand-side:\n{stdout}"
    );
}

#[test]
fn reset_evicts_demand_plans_and_recompiles_on_next_query() {
    let (stdout, _) = run_lpsi(
        &[],
        "e(a, b). e(b, c).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- t(X, Y), e(Y, Z).\n\
         ?- t(a, X).\n\
         :reset\n\
         ?- t(a, X).\n\
         :stats\n\
         e(a, c).\n\
         ?- t(a, X).\n\
         :quit\n",
    );
    assert!(stdout.contains("2 answer(s)."), "before reset:\n{stdout}");
    assert!(
        stdout.contains("demand plans evicted."),
        "reset notice:\n{stdout}"
    );
    assert!(stdout.contains("no."), "no facts, no answers:\n{stdout}");
    // `:stats` shows cumulative counters: 1 adornment from the first
    // query plus 1 from the recompile the eviction forced.
    assert!(
        stdout.contains("adorns=2"),
        "the evicted plan recompiled on the post-reset query:\n{stdout}"
    );
    assert!(
        stdout.contains("1 answer(s)."),
        "fresh fact answers under the recompiled plan:\n{stdout}"
    );
}

#[test]
fn demand_cold_mode_rederives_per_query() {
    let (stdout, _) = run_lpsi(
        &[],
        ":demand cold\n\
         e(a, b). e(b, c).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- t(X, Y), e(Y, Z).\n\
         ?- t(a, X).\n\
         ?- t(a, X).\n\
         :stats\n\
         :quit\n",
    );
    assert!(stdout.contains("demand = cold"), "mode:\n{stdout}");
    assert!(stdout.contains("2 answer(s)."), "answers:\n{stdout}");
    // Cumulative: each of the two queries cleared the space and
    // re-planted its seed — unlike retained mode, where the repeat
    // would be a duplicate.
    assert!(
        stdout.contains("demand_cont=0") && stdout.contains("magic_seeds=2"),
        "cold mode re-seeds and re-derives each query:\n{stdout}"
    );
}

#[test]
fn conjunctive_queries_print_bindings() {
    // The old "queries must be a single predicate literal" restriction
    // is gone: conjunctions compile as temporary query rules.
    let (stdout, _) = run_lpsi(
        &[],
        "e(a, b). e(b, c).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- e(X, Y), t(Y, Z).\n\
         ?- t(a, X), e(X, Y).\n\
         :quit\n",
    );
    assert!(
        stdout.contains("X = b, Y = c"),
        "conjunctive bindings:\n{stdout}"
    );
    assert!(stdout.contains("1 answer(s)."), "one answer:\n{stdout}");
}

#[test]
fn ground_queries_answer_yes_or_no() {
    // A ground single literal echoes the matching fact (point path); a
    // ground conjunction answers yes/no.
    let (stdout, _) = run_lpsi(
        &[],
        "e(a, b). e(b, c).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- e(X, Y), t(Y, Z).\n\
         ?- t(a, c).\n\
         ?- t(a, b), t(b, c).\n\
         ?- t(c, a), t(a, b).\n\
         :quit\n",
    );
    assert!(stdout.contains("t(a, c)"), "ground point query:\n{stdout}");
    assert!(
        stdout.contains("yes."),
        "ground conjunction holds:\n{stdout}"
    );
    assert!(stdout.contains("no."), "t(c, a) does not:\n{stdout}");
}

#[test]
fn repeated_variable_queries_join_instead_of_wildcarding() {
    // `?- t(X, X)` used to treat both positions as independent
    // wildcards; it now compiles a proper join.
    let (stdout, _) = run_lpsi(
        &[],
        "e(a, b). e(b, a). e(c, d).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- e(X, Y), t(Y, Z).\n\
         ?- t(X, X).\n\
         :quit\n",
    );
    assert!(
        stdout.contains("X = a") && stdout.contains("X = b"),
        "the a/b cycle closes on itself:\n{stdout}"
    );
    assert!(stdout.contains("2 answer(s)."), "c/d is acyclic:\n{stdout}");
}

#[test]
fn underscore_variables_corefer_like_any_other() {
    // The lowering maps every occurrence of one name — `_A` included —
    // to the same variable, so `?- t(_A, _A).` is the same join as
    // `?- t(X, X).`, not a pair of wildcards.
    let (stdout, _) = run_lpsi(
        &[],
        "e(a, b). e(c, d).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- e(X, Y), t(Y, Z).\n\
         ?- t(_A, _A).\n\
         :quit\n",
    );
    assert!(
        stdout.contains("no."),
        "acyclic graph has no self-paths, even for _-vars:\n{stdout}"
    );
}

#[test]
fn profile_explain_and_stats_reset_round_out_observability() {
    let (stdout, _) = run_lpsi(
        &[],
        "e(a, b). e(b, c). e(c, d).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- e(X, Y), t(Y, Z).\n\
         :explain t(a, X).\n\
         :profile t(a, X).\n\
         ?- t(a, X).\n\
         :stats reset\n\
         :stats\n\
         :quit\n",
    );
    // :explain prints the plan without running the goal.
    assert!(
        stdout.contains("adornment: bf"),
        "explain adornment:\n{stdout}"
    );
    assert!(stdout.contains("sips:"), "explain SIPS:\n{stdout}");
    assert!(
        stdout.contains("plan: demand"),
        "explain join order:\n{stdout}"
    );
    // :profile re-runs from a cold plan with per-literal attribution.
    assert!(
        stdout.contains("profile (estimated vs actual rows per body literal):"),
        "profile header:\n{stdout}"
    );
    assert!(
        stdout.contains("est=") && stdout.contains("probes="),
        "per-literal estimated-vs-actual rows:\n{stdout}"
    );
    assert!(stdout.contains("3 answer(s)."), "answers:\n{stdout}");
    // :stats reset zeroes the cumulative counters.
    assert!(stdout.contains("stats reset."), "reset notice:\n{stdout}");
    let after_reset = stdout
        .split("stats reset.")
        .nth(1)
        .expect("output after reset");
    assert!(
        after_reset.contains("no evaluation yet."),
        "counters cleared:\n{stdout}"
    );
}

#[test]
fn demand_queries_with_sets_and_negation_fall_back_soundly() {
    // Negation reachable from the goal forces the sound fallback; the
    // answers still come back correct, and the fallback is counted.
    let (stdout, _) = run_lpsi(
        &[],
        "node(a). node(b). e(a, b).\n\
         reach(a).\n\
         reach(Y) :- reach(X), e(X, Y).\n\
         un(X) :- node(X), not reach(X).\n\
         ?- un(X).\n\
         :stats\n\
         :quit\n",
    );
    assert!(stdout.contains("no."), "all nodes reachable:\n{stdout}");
    assert!(
        stdout.contains("demand_fb=1"),
        "fallback counted in :stats:\n{stdout}"
    );
}
